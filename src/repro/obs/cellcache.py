"""Content-addressed cache of experiment cell results.

Every experiment in this repo is a pure function of ``(params, seed)``
— that is what makes run manifests replayable (:mod:`repro.obs.
manifest`).  Purity also means a repeated cell is pure waste: a τ-sweep
re-run after an unrelated code tweak, a perf-report baseline pass, or a
notebook re-execution recomputes cells whose inputs are byte-for-byte
identical to a previous run.  This module serves those repeats from
disk.

The cache is **content-addressed over inputs**: the key is the SHA-256
of the canonical JSON of ``(schema, package version, experiment id,
sanitized params)`` — the same sanitized-parameter view the manifest
writer records, so *anything a manifest could replay, the cache can
key*.  Parameters that do not survive sanitization (``{"__repr__":
...}`` placeholders — live objects, callbacks) make the cell
non-replayable and therefore non-cacheable; such cells are skipped, and
counted, rather than mis-keyed.

Safety properties:

* the package version participates in the key, so a code change that
  bumps the version cold-starts the cache rather than serving stale
  results;
* every stored entry carries the :func:`repro.obs.manifest.
  result_digest` of its result, and :meth:`CellCache.fetch` re-digests
  the unpickled result on every hit — a corrupt or tampered entry is a
  miss, never a wrong answer (:meth:`CellCache.fetch_outcome`
  additionally distinguishes the two, so the experiment service can
  count rejected entries);
* writes are atomic (temp file + ``os.replace``) **and single-writer**:
  a per-key lock file (``O_CREAT|O_EXCL``) elects one winner among
  concurrent processes computing the same cell, so racing workers
  neither interleave partial writes nor double-count ``bytes_written``
  — the losers skip the store (counted as ``store_contended``) and a
  stale lock (a crashed writer) expires after
  :data:`CellCache.LOCK_STALE_S`;
* ``prune`` retires an entry by **rename-then-unlink**: the entry
  leaves the namespace atomically (a concurrent :meth:`fetch` either
  read the complete old bytes or sees a clean miss and recomputes —
  never a torn file), and entries whose writer currently holds the
  lock are never pruned mid-write;
* entries are pickles, so the cache directory is trusted input — it
  lives next to the run manifests the same trust already covers
  (``runs/cellcache/`` by default).  ``repro replay`` of any manifest
  bypasses the cache entirely and remains the ground-truth check.

Enabled by ``REPRO_CELL_CACHE_DIR`` (exported by the CLI so pool
workers inherit it, like ``REPRO_MANIFEST_DIR``); the CLI's
``--no-cell-cache`` clears it.  Hit/miss/store/skip counts surface as
``cellcache.*`` metrics when ``--metrics`` is on.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from typing import Any, Dict, Optional, Tuple

from repro.obs.manifest import _package_version, _sanitize, result_digest

__all__ = ["CellCache", "cell_cache", "cell_key", "CACHE_ENV",
           "CACHE_SCHEMA", "LOCK_STALE_ENV"]

CACHE_ENV = "REPRO_CELL_CACHE_DIR"
CACHE_SCHEMA = 1
LOCK_STALE_ENV = "REPRO_CELLCACHE_LOCK_STALE_S"

#: Memoized caches keyed by directory, so repeated cells in one process
#: share one instance (and one ``makedirs`` check).
_instances: Dict[str, "CellCache"] = {}


def cell_cache() -> Optional["CellCache"]:
    """The process-wide cache configured by ``REPRO_CELL_CACHE_DIR``,
    or None when caching is disabled."""
    path = os.environ.get(CACHE_ENV, "").strip()
    if not path:
        return None
    cache = _instances.get(path)
    if cache is None:
        cache = _instances[path] = CellCache(path)
    return cache


def cell_key(experiment: str, params: Dict[str, Any]) -> Optional[str]:
    """Content key for one cell, independent of any cache instance.

    This is the identity shared by the cell cache, the service dedupe
    map, and the sweep journal: SHA-256 over ``(schema, package
    version, experiment id, sanitized params)``.  Returns None when
    the params contain a value that does not survive manifest
    sanitization — such a cell is not replayable, so nothing may key
    on it.
    """
    sanitized = {k: _sanitize(v) for k, v in params.items()}
    if _has_unsanitizable(sanitized):
        return None
    material = json.dumps(
        [CACHE_SCHEMA, _package_version(), experiment, sanitized],
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _has_unsanitizable(value: Any) -> bool:
    """True if a sanitized parameter tree contains a repr placeholder
    (a live object the manifest could not replay either)."""
    if isinstance(value, dict):
        if set(value) == {"__repr__"}:
            return True
        return any(_has_unsanitizable(v) for v in value.values())
    if isinstance(value, list):
        return any(_has_unsanitizable(v) for v in value)
    return False


class CellCache:
    """Pickle store of cell results under one directory."""

    #: A store lock older than this is considered abandoned (its writer
    #: crashed between acquire and release) and is broken by the next
    #: writer.  Class attribute is the default; per-instance override
    #: via the ``lock_stale_s`` constructor arg or the
    #: ``REPRO_CELLCACHE_LOCK_STALE_S`` environment variable (for
    #: sweeps whose individual cells legitimately run longer than a
    #: minute — a live slow writer must never have its lock broken).
    LOCK_STALE_S = 60.0

    def __init__(self, directory: str,
                 lock_stale_s: Optional[float] = None):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        if lock_stale_s is None:
            env = os.environ.get(LOCK_STALE_ENV, "").strip()
            if env:
                try:
                    lock_stale_s = float(env)
                except ValueError:
                    lock_stale_s = None
        if lock_stale_s is not None and lock_stale_s > 0:
            # Shadow the class attribute so every internal use — and
            # every external reader of ``cache.LOCK_STALE_S`` — sees
            # the configured value.
            self.LOCK_STALE_S = float(lock_stale_s)
        #: Test-only injection points: ``{point_name: callable}``,
        #: invoked (when set) at the named interleaving points —
        #: ``store.locked`` (lock held, before the write),
        #: ``store.before_replace`` (temp written, before publish),
        #: ``fetch.after_read`` (bytes read, before verify),
        #: ``prune.before_unlink`` (entry renamed, before removal).
        #: Race regression tests use these to force the exact
        #: interleavings the locking must survive.
        self._hooks: Dict[str, Any] = {}

    def _hook(self, point: str) -> None:
        fn = self._hooks.get(point)
        if fn is not None:
            fn()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(self, experiment: str, params: Dict[str, Any]) -> Optional[str]:
        """Content key for one cell, or None when ``params`` contain a
        value that does not survive manifest sanitization (those cells
        are not replayable, so they must not be cache-served)."""
        key = cell_key(experiment, params)
        if key is None:
            self._count("skipped")
        return key

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"cell-{key}.pkl")

    def _lock_path(self, key: str) -> str:
        return os.path.join(self.directory, f".cell-{key}.lock")

    # ------------------------------------------------------------------
    # Store lock (single writer per key)
    # ------------------------------------------------------------------
    def _acquire_lock(self, key: str) -> bool:
        """Try to become the single writer for ``key``.

        ``O_CREAT|O_EXCL`` is atomic on every platform we care about;
        a lock whose mtime is older than :data:`LOCK_STALE_S` belongs
        to a crashed writer and is broken (once) before retrying.
        """
        lock = self._lock_path(key)
        for _attempt in range(2):
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                with os.fdopen(fd, "w") as fh:
                    fh.write(str(os.getpid()))
                return True
            except FileExistsError:
                try:
                    age = time.time() - os.stat(lock).st_mtime
                except OSError:
                    continue  # holder released between EXCL and stat
                if age <= self.LOCK_STALE_S:
                    return False
                try:  # abandoned lock: break it and retry the acquire
                    os.unlink(lock)
                except OSError:
                    pass
            except OSError:
                return False
        return False

    def _release_lock(self, key: str) -> None:
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    def _lock_is_live(self, path: str) -> bool:
        """True when ``path``'s entry has a fresh writer lock."""
        name = os.path.basename(path)
        if not (name.startswith("cell-") and name.endswith(".pkl")):
            return False
        lock = os.path.join(
            self.directory, "." + name[: -len(".pkl")] + ".lock")
        try:
            return time.time() - os.stat(lock).st_mtime <= self.LOCK_STALE_S
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Fetch / store
    # ------------------------------------------------------------------
    def fetch(self, key: str) -> Tuple[bool, Any]:
        """``(True, result)`` on a verified hit, else ``(False, None)``.

        A hit requires the stored result to re-digest to the recorded
        digest; anything else (missing file, unpickle failure, digest
        mismatch) is a miss and the cell recomputes.
        """
        status, result = self.fetch_outcome(key)
        return (status == "hit"), result

    def fetch_outcome(self, key: str) -> Tuple[str, Any]:
        """``(status, result_or_None)`` with status ``hit`` / ``miss``
        / ``corrupt``.

        ``corrupt`` means an entry *exists* but failed digest
        verification (or did not unpickle) — the experiment service
        counts those as ``service.cache_rejects`` and recomputes, while
        a plain ``miss`` is just cold cache.  Both recompute; neither
        can ever return a wrong answer.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            self._count("misses")
            return "miss", None
        self._hook("fetch.after_read")
        data = self._chaos_fetch(key, data)
        try:
            entry = pickle.loads(data)
            result = entry["result"]
            self._count("digest_verifies")
            if result_digest(result) != entry["digest"]:
                raise ValueError("digest mismatch")
        except ValueError:
            self._count("corrupt")
            return "corrupt", None
        except (pickle.UnpicklingError, KeyError, EOFError, AttributeError,
                ImportError, IndexError, TypeError):
            self._count("corrupt")
            return "corrupt", None
        self._count("hits")
        self._count("bytes_read", len(data))
        return "hit", result

    def store(self, key: str, experiment: str, result: Any) -> Optional[str]:
        """Atomically persist one cell result; returns the path.

        Returns None when nothing was written: the result cannot be
        pickled, the directory is read-only, or another process holds
        the write lock for this key (it is computing the *same pure
        cell*, so its entry is as good as ours — skipping keeps
        ``bytes_written`` equal to the bytes actually on disk instead
        of double-counting racing writers).
        """
        entry = {
            "schema": CACHE_SCHEMA,
            "experiment": experiment,
            "digest": result_digest(result),
            "result": result,
        }
        try:
            data = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            # Unpicklable results simply do not cache; the computed
            # result is still returned upstream.
            return None
        if not self._acquire_lock(key):
            self._count("store_contended")
            return None
        path = self._path(key)
        try:
            self._hook("store.locked")
            self._chaos_store(key)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=".cell-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                self._hook("store.before_replace")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        finally:
            self._release_lock(key)
        self._count("stores")
        # Count the bytes we serialized, not a post-replace stat: the
        # stat could race a concurrent prune, and under contention it
        # would bill every writer for the one file that survived.
        self._count("bytes_written", len(data))
        return path

    def digest_of(self, key: str) -> Optional[str]:
        """Recorded result digest for ``key`` (None when absent) —
        lets callers compare a cached cell against a fresh recompute
        without unpickling the whole result."""
        try:
            with open(self._path(key), "rb") as fh:
                entry = pickle.load(fh)
            return entry["digest"]
        except (OSError, pickle.UnpicklingError, KeyError, EOFError,
                AttributeError, ImportError, IndexError):
            return None

    # ------------------------------------------------------------------
    # Introspection / maintenance (``repro cache stats`` / ``prune``)
    # ------------------------------------------------------------------
    def _entries(self):
        """Yield ``(path, stat)`` for every committed cache entry.

        In-flight temp files (``.cell-*.tmp``) are skipped; entries that
        vanish mid-scan (a concurrent prune) are silently dropped."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if not (name.startswith("cell-") and name.endswith(".pkl")):
                continue
            path = os.path.join(self.directory, name)
            try:
                yield path, os.stat(path)
            except OSError:
                continue

    def stats(self) -> Dict[str, Any]:
        """Entry count, bytes on disk, and entry-age range in seconds."""
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for _path, st in self._entries():
            entries += 1
            total_bytes += st.st_size
            if oldest is None or st.st_mtime < oldest:
                oldest = st.st_mtime
            if newest is None or st.st_mtime > newest:
                newest = st.st_mtime
        return {
            "directory": self.directory,
            "entries": entries,
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def prune(self, older_than_s: float, *,
              now: Optional[float] = None) -> Dict[str, int]:
        """Remove entries whose mtime is more than ``older_than_s``
        seconds old.

        Removal is **rename-then-unlink**: the entry is first renamed
        to a hidden ``.cell-*.doomed`` name (atomic — it leaves the
        key's namespace in one step, so a concurrent :meth:`fetch`
        either already read the complete old bytes or sees a clean
        miss), then the doomed file is unlinked.  Entries whose writer
        currently holds the store lock are skipped — a cell being
        (re)written is by definition not stale.  Entries already gone
        count as removed, not errors.
        """
        cutoff = (time.time() if now is None else now) - older_than_s
        removed = 0
        removed_bytes = 0
        kept = 0
        for path, st in self._entries():
            if st.st_mtime >= cutoff:
                kept += 1
                continue
            if self._lock_is_live(path):
                kept += 1
                continue
            doomed = os.path.join(
                self.directory,
                "." + os.path.basename(path)[: -len(".pkl")] + ".doomed",
            )
            try:
                os.rename(path, doomed)
            except FileNotFoundError:
                removed += 1  # a concurrent prune beat us to it
                removed_bytes += st.st_size
                continue
            except OSError:
                kept += 1
                continue
            self._hook("prune.before_unlink")
            try:
                os.unlink(doomed)
            except OSError:
                pass
            removed += 1
            removed_bytes += st.st_size
        return {"removed": removed, "removed_bytes": removed_bytes,
                "kept": kept}

    # ------------------------------------------------------------------
    # Chaos injection (repro.chaos; no-ops unless REPRO_CHAOS is set)
    # ------------------------------------------------------------------
    @staticmethod
    def _chaos_fetch(key: str, data: bytes) -> bytes:
        """``cellcache.fetch``/``corrupt``: flip a byte in the entry
        *after* the read, so the digest-verification path (which
        classifies the entry ``corrupt`` and recomputes) is what the
        fault exercises — exactly the on-disk bit-rot it defends
        against."""
        if not os.environ.get("REPRO_CHAOS", "").strip():
            return data
        from repro.chaos import chaos_point

        fault = chaos_point("cellcache.fetch", key=key)
        if fault is not None and fault["kind"] == "corrupt" and data:
            mid = len(data) // 2
            data = data[:mid] + bytes([data[mid] ^ 0xFF]) + data[mid + 1:]
        return data

    @staticmethod
    def _chaos_store(key: str) -> None:
        """``cellcache.store``/``stall``: sleep while holding the store
        lock, simulating a slow or wedged writer so lock-contention and
        stale-expiry behaviour can be exercised under schedule."""
        if not os.environ.get("REPRO_CHAOS", "").strip():
            return
        from repro.chaos import chaos_point

        fault = chaos_point("cellcache.store", key=key)
        if fault is not None and fault["kind"] == "stall":
            time.sleep(float(fault.get("sleep_s", 0.0)))

    # ------------------------------------------------------------------
    @staticmethod
    def _count(event: str, n: int = 1) -> None:
        from repro.obs import get_obs

        metrics = get_obs().metrics
        if metrics.enabled:
            metrics.counter(f"cellcache.{event}").inc(n)
