"""Trace scoring and stitching (§5.2, §5.3).

The SGX base64 attack recovers a prefix of the per-character LUT-line
trace in each victim run; :func:`concatenate_traces` implements the
paper's two-run protocol (first run covers the head, a delayed second
run covers the tail).  Scoring helpers compute the coverage/accuracy
numbers the paper reports.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def coverage(recovered: Sequence[Optional[int]], truth: Sequence[int]) -> float:
    """Fraction of positions recovered (non-None), relative to truth."""
    if not truth:
        raise ValueError("empty ground truth")
    usable = min(len(recovered), len(truth))
    observed = sum(1 for v in recovered[:usable] if v is not None)
    return observed / len(truth)


def binary_trace_accuracy(
    recovered: Sequence[Optional[int]], truth: Sequence[int]
) -> float:
    """Accuracy over the *recovered* positions (paper's metric: of the
    trace portion captured, how much is correct)."""
    pairs = [
        (r, t)
        for r, t in zip(recovered, truth)
        if r is not None
    ]
    if not pairs:
        return 0.0
    return sum(1 for r, t in pairs if r == t) / len(pairs)


def branch_trace_accuracy(
    recovered: Sequence[Optional[bool]], truth: Sequence[bool]
) -> float:
    """Branch-direction accuracy over all iterations (missing = wrong,
    matching §5.3's 'extract all branch directions' framing)."""
    if not truth:
        raise ValueError("empty ground truth")
    correct = sum(
        1
        for i, direction in enumerate(truth)
        if i < len(recovered) and recovered[i] == direction
    )
    return correct / len(truth)


def concatenate_traces(
    first_half: Sequence[Optional[int]],
    second_half: Sequence[Optional[int]],
    total_length: int,
) -> List[Optional[int]]:
    """Stitch two partial traces of the same secret (§5.2).

    ``first_half`` was captured from the start of run 1;
    ``second_half`` from a delayed attack in run 2, aligned so that its
    captured positions land in the tail.  The first run's data wins
    where both observed a position.
    """
    result: List[Optional[int]] = [None] * total_length
    for i, value in enumerate(second_half[:total_length]):
        if value is not None:
            result[i] = value
    for i, value in enumerate(first_half[:total_length]):
        if value is not None:
            result[i] = value
    return result


def longest_observed_prefix(recovered: Sequence[Optional[int]]) -> int:
    """Length of the contiguous observed prefix."""
    for i, value in enumerate(recovered):
        if value is None:
            return i
    return len(recovered)
