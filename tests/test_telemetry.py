"""Run-health telemetry: per-cell scoping, deterministic aggregation,
OpenMetrics export, fast-path counters, and the zero-allocation
disabled mode."""

import json
import os
import tracemalloc

import pytest

import repro.obs as obs_mod
from repro.cli import main
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    aggregate_manifests,
    cell_metrics_scope,
    merge_histograms,
    merge_scalars,
    percentile_summary,
    render_openmetrics,
    render_report,
    write_telemetry,
)


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs_mod.reset()
    yield
    obs_mod.reset()


# ----------------------------------------------------------------------
# Merging primitives
# ----------------------------------------------------------------------
class TestMerging:
    def test_scalars_sum_keywise_and_ints_stay_ints(self):
        merged = merge_scalars([{"a": 1, "b": 2.5}, {"a": 3, "c": True}])
        assert merged == {"a": 4, "b": 2.5, "c": 1}
        assert isinstance(merged["a"], int)

    def test_histogram_dicts_excluded_from_scalars(self):
        hist = {"count": 1, "sum": 2.0, "mean": 2.0, "min": 2.0,
                "max": 2.0, "buckets": {"inf": 1}}
        assert merge_scalars([{"h": hist, "a": 1}]) == {"a": 1}

    def test_histograms_bucket_merge(self):
        h1 = {"count": 2, "sum": 3.0, "mean": 1.5, "min": 1.0, "max": 2.0,
              "buckets": {"le_10": 2, "inf": 0}}
        h2 = {"count": 1, "sum": 50.0, "mean": 50.0, "min": 50.0,
              "max": 50.0, "buckets": {"le_10": 0, "inf": 1}}
        merged = merge_histograms([{"h": h1}, {"h": h2}])["h"]
        assert merged["count"] == 3
        assert merged["sum"] == 53.0
        assert merged["min"] == 1.0 and merged["max"] == 50.0
        assert merged["buckets"] == {"le_10": 2, "inf": 1}
        assert merged["mean"] == pytest.approx(53.0 / 3)

    def test_percentiles_nearest_rank(self):
        summary = percentile_summary([3.0, 1.0, 2.0, 4.0])
        assert summary["n"] == 4
        assert summary["p0"] == 1.0 and summary["p100"] == 4.0
        assert summary["total"] == 10.0
        assert percentile_summary([]) == {"n": 0}


# ----------------------------------------------------------------------
# Per-cell scoping
# ----------------------------------------------------------------------
class TestCellScope:
    def test_scope_isolates_and_folds_back(self):
        obs = obs_mod.configure(metrics=True)
        obs.metrics.counter("outer").inc(5)
        with cell_metrics_scope() as scoped:
            assert scoped is not obs_mod.get_obs().metrics or True
            reg = obs_mod.get_obs().metrics
            assert reg.get("outer") is None  # fresh registry
            reg.counter("outer").inc(2)
            reg.histogram("h", buckets=(10.0,)).observe(3.0)
        # restored parent carries the folded numbers
        parent = obs_mod.get_obs().metrics
        assert parent.counter("outer").value == 7
        assert parent.get("h").count == 1

    def test_scope_noop_when_disabled(self):
        obs = obs_mod.configure(metrics=False)
        with cell_metrics_scope() as scoped:
            assert scoped is None
            assert obs_mod.get_obs().metrics is obs.metrics


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _manifest(kind, experiment, metrics, wall=0.1):
    return {"kind": kind, "experiment": experiment, "metrics": metrics,
            "wall_time_s": wall, "version": "1.0"}


class TestAggregation:
    def test_cells_preferred_over_runs(self):
        telemetry = aggregate_manifests([
            _manifest("run", "sweep", {"a": 100}),
            _manifest("cell", "res", {"a": 1}),
            _manifest("cell", "res", {"a": 2}),
        ])
        assert telemetry["counter_source"] == "cells"
        assert telemetry["exact"]["counters"] == {"a": 3}
        assert telemetry["cells"] == 2 and telemetry["runs"] == 1
        assert telemetry["experiments"] == {"res": 2, "sweep": 1}

    def test_runs_used_when_no_cells(self):
        telemetry = aggregate_manifests([_manifest("run", "sgx", {"a": 7})])
        assert telemetry["counter_source"] == "runs"
        assert telemetry["exact"]["counters"] == {"a": 7}

    def test_wall_time_quarantined_outside_exact(self):
        telemetry = aggregate_manifests([
            _manifest("cell", "res", {"a": 1}, wall=0.25),
            _manifest("cell", "res", {"a": 1}, wall=0.75),
        ])
        assert telemetry["timing"]["wall_time_s"]["n"] == 2
        assert "wall" not in json.dumps(telemetry["exact"])


# ----------------------------------------------------------------------
# The acceptance criterion: telemetry.json exact section bit-identical
# across --jobs {1, 2, 4}
# ----------------------------------------------------------------------
class TestJobsInvariance:
    @pytest.mark.slow
    def test_exact_section_bit_identical_jobs_1_2_4(self, tmp_path, capsys):
        blobs = {}
        for jobs in (1, 2, 4):
            run_dir = tmp_path / f"jobs{jobs}"
            # Cache off: a cache-served cell is not re-simulated and
            # contributes no counters, which would make the comparison
            # depend on execution history rather than --jobs.
            assert main([
                "--telemetry", "--no-cell-cache",
                "--manifest-dir", str(run_dir), "--jobs", str(jobs),
                "sweep", "--taus", "440,740,1040",
                "--preemptions", "40",
            ]) == 0
            capsys.readouterr()
            telemetry = json.loads((run_dir / "telemetry.json").read_text())
            blobs[jobs] = json.dumps(telemetry["exact"], sort_keys=True)
            assert telemetry["cells"] == 3
            assert telemetry["counter_source"] == "cells"
        assert blobs[1] == blobs[2] == blobs[4]

    def test_exact_section_identical_serial_vs_pool(self, tmp_path, capsys):
        """Tier-1 variant of the acceptance check: one small sweep,
        jobs 1 vs 2, byte-compared exact sections."""
        blobs = {}
        for jobs in (1, 2):
            run_dir = tmp_path / f"j{jobs}"
            assert main([
                "--telemetry", "--no-cell-cache",
                "--manifest-dir", str(run_dir), "--jobs", str(jobs),
                "sweep", "--taus", "440,740", "--preemptions", "15",
            ]) == 0
            capsys.readouterr()
            blobs[jobs] = json.dumps(
                json.loads((run_dir / "telemetry.json").read_text())["exact"],
                sort_keys=True)
        assert blobs[1] == blobs[2]


# ----------------------------------------------------------------------
# Fast-path counters actually fire
# ----------------------------------------------------------------------
class TestCounterWiring:
    def test_telemetry_carries_ff_and_attack_counters(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        assert main([
            "--telemetry", "--no-cell-cache",
            "--manifest-dir", str(run_dir), "--jobs", "1",
            "sweep", "--taus", "740", "--preemptions", "40",
        ]) == 0
        capsys.readouterr()
        telemetry = json.loads((run_dir / "telemetry.json").read_text())
        counters = telemetry["exact"]["counters"]
        assert counters["sim.events_fired"] > 0
        assert counters["ff.insts_fast_forwarded"] > 0
        assert counters["attack.samples"] == 40
        hist = telemetry["exact"]["histograms"][
            "attack.preemptions_per_window"]
        assert hist["count"] == 1
        assert hist["max"] == 40

    def test_batch_accounting_counts_addresses(self):
        from repro.uarch.cache import MemoryHierarchy

        hierarchy = MemoryHierarchy(1)
        hierarchy.access_many(0, [0x1000, 0x1040, 0x2000])
        assert hierarchy.batch_calls == 1
        assert hierarchy.batch_addrs == 3
        toucher = hierarchy.make_line_toucher(0, (0x1000, 0x1040))
        toucher()
        assert hierarchy.batch_calls == 2
        assert hierarchy.batch_addrs == 5

    def test_engine_counts_compactions(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.call_at(1.0, lambda: None)
        handles = [sim.call_at(1e9 + i, lambda: None) for i in range(64)]
        for handle in handles:
            handle.cancel()
        assert sim.compactions >= 1


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def test_counter_gauge_histogram_rendering(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("kernel.switches").inc(3)
        registry.gauge("sim.now_ns").set(12.5)
        hist = registry.histogram("lat", buckets=(10.0, 100.0))
        hist.observe(5.0)
        hist.observe(50.0)
        text = render_openmetrics(registry)
        assert "# TYPE repro_kernel_switches counter" in text
        assert "repro_kernel_switches_total 3" in text
        assert "repro_sim_now_ns 12.5" in text
        assert 'repro_lat_bucket{le="10"} 1' in text
        assert 'repro_lat_bucket{le="100"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_count 2" in text
        assert text.endswith("# EOF\n")

    def test_stats_verb_openmetrics_format(self, capsys):
        assert main(["--no-manifest", "stats", "resolution",
                     "--preemptions", "20", "--format", "openmetrics"]) == 0
        out = capsys.readouterr().out
        assert "# EOF" in out
        assert "repro_attack_samples_total 20" in out


class TestCounterTracks:
    def test_publish_emits_counter_track_events(self, capsys):
        import repro.obs as obs

        observability = obs.configure(metrics=True, trace=True)
        from repro.experiments.resolution import run_resolution

        run_resolution(740.0, preemptions=20, seed=1)
        observability.publish()
        trace = observability.tracer.to_chrome()
        counter_events = [e for e in trace["traceEvents"]
                          if e["ph"] == "C"]
        assert counter_events, "publish() should emit counter tracks"
        names = {e["name"] for e in counter_events}
        assert "sim.events_fired" in names
        for event in counter_events:
            assert "value" in event["args"]
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(trace) == []


# ----------------------------------------------------------------------
# Report rendering
# ----------------------------------------------------------------------
class TestReport:
    def test_report_reads_run_dir(self, tmp_path, capsys):
        run_dir = tmp_path / "runs"
        assert main([
            "--telemetry", "--no-cell-cache",
            "--manifest-dir", str(run_dir), "--jobs", "1",
            "sweep", "--taus", "740", "--preemptions", "30",
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run health" in out
        assert "fast-forward" in out
        assert "coverage" in out

    def test_report_missing_dir_fails(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 1

    def test_render_report_without_metrics_hints(self, tmp_path):
        report = render_report(str(tmp_path))
        assert "no metrics recorded" in report

    def test_write_telemetry_is_stable_bytes(self, tmp_path):
        manifest = _manifest("cell", "res", {"a": 1})
        path = tmp_path / "cell-res-s0-aaaa.json"
        path.write_text(json.dumps(manifest))
        first = write_telemetry(str(tmp_path), str(tmp_path / "t1.json"))
        second = write_telemetry(str(tmp_path), str(tmp_path / "t2.json"))
        assert (open(first).read().replace("t1", "")
                == open(second).read().replace("t2", ""))


# ----------------------------------------------------------------------
# Disabled mode: zero allocations from the obs layer on the hot loop
# ----------------------------------------------------------------------
class TestDisabledOverhead:
    def test_disabled_telemetry_allocates_nothing_in_obs(self):
        """With observability off, running the engine hot loop must not
        allocate a single object attributable to repro/obs/*.py — the
        null-instrument design means disabled telemetry is free."""
        from repro.sim.engine import Simulator

        obs_mod.configure(metrics=False, trace=False)
        obs_dir = os.path.dirname(obs_mod.__file__)

        def hot_loop():
            sim = Simulator()
            fired = [0]

            def tick():
                fired[0] += 1
                if fired[0] < 5000:
                    sim.call_after(10.0, tick)

            sim.call_at(0.0, tick)
            sim.run_until(1e9)
            return fired[0]

        hot_loop()  # warm-up outside the snapshot window
        tracemalloc.start(10)
        try:
            hot_loop()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        obs_allocs = [
            stat for stat in snapshot.statistics("filename")
            if os.path.normpath(os.path.dirname(stat.traceback[0].filename))
            == os.path.normpath(obs_dir)
        ]
        assert obs_allocs == [], (
            f"disabled-mode obs allocations: {obs_allocs}"
        )
