"""Task model and the kernel nice→weight table.

A task's vruntime advances as ``Δτ = Δt · (NICE_0_LOAD / weight)`` —
the paper's increment rate ρ.  The 40-entry weight table is copied from
the kernel's ``sched_prio_to_weight`` so nice-level experiments
(Fig 4.5) use the exact multiplicative steps (~1.25× per nice level)
real CFS uses.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

NICE_0_LOAD = 1024

#: Kernel sched_prio_to_weight: index 0 is nice -20, index 39 is nice +19.
SCHED_PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]

MIN_NICE = -20
MAX_NICE = 19


def nice_to_weight(nice: int) -> int:
    """Load weight for a nice level; nice 0 → 1024."""
    if not MIN_NICE <= nice <= MAX_NICE:
        raise ValueError(f"nice must be in [-20, 19], got {nice}")
    return SCHED_PRIO_TO_WEIGHT[nice + 20]


class TaskState(enum.Enum):
    RUNNING = "running"  # currently on a CPU
    RUNNABLE = "runnable"  # on a runqueue, waiting
    SLEEPING = "sleeping"  # on the waitqueue (blocked)
    EXITED = "exited"


_pid_counter = itertools.count(1000)


@dataclass
class Task:
    """One schedulable thread.

    ``body`` is the behaviour object the kernel executes when the task
    runs (a :class:`repro.kernel.threads.ThreadBody`); the scheduler
    never looks inside it.  ``vruntime`` is in nanoseconds of weighted
    virtual time; EEVDF additionally uses ``deadline``/``vlag``/``slice``.
    """

    name: str
    body: Any = None
    nice: int = 0
    pid: int = field(default_factory=lambda: next(_pid_counter))
    state: TaskState = TaskState.SLEEPING
    cpu: Optional[int] = None  # runqueue the task is on (or ran on last)
    allowed_cpus: Optional[frozenset] = None  # None = any CPU
    enclave: bool = False  # SGX: interrupts cause AEX (TLB flush)

    # CFS / shared accounting
    vruntime: float = 0.0
    sum_exec_runtime: float = 0.0
    last_sleep_vruntime: float = 0.0
    slice_exec: float = 0.0  # exec time since last schedule-in (S_min check)

    # EEVDF
    deadline: float = 0.0
    vlag: float = 0.0
    slice: float = 0.0  # request size (0 = use base_slice)

    # Kernel per-task state
    timer_slack: float = 50_000.0  # prctl(PR_SET_TIMERSLACK), ns
    #: Container/cgroup membership; mitigation policies (SchedGuard,
    #: PreFence) match on it, falling back to the task name when empty.
    cgroup: str = ""

    # Statistics maintained by the kernel
    preemptions_suffered: int = 0
    wakeups: int = 0
    migrations: int = 0

    @property
    def weight(self) -> int:
        return nice_to_weight(self.nice)

    def vruntime_delta(self, exec_ns: float) -> float:
        """Weighted vruntime increment for ``exec_ns`` of CPU time."""
        return exec_ns * NICE_0_LOAD / self.weight

    def can_run_on(self, cpu: int) -> bool:
        return self.allowed_cpus is None or cpu in self.allowed_cpus

    def pin_to(self, cpu: int) -> None:
        """sched_setaffinity to a single CPU."""
        self.allowed_cpus = frozenset({cpu})

    def __hash__(self) -> int:
        return self.pid

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Task) and other.pid == self.pid

    def __repr__(self) -> str:
        return (
            f"Task({self.name!r}, pid={self.pid}, state={self.state.value}, "
            f"cpu={self.cpu}, vruntime={self.vruntime:.0f})"
        )
