"""Task model and the kernel nice→weight table."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.threads import ComputeBody
from repro.sched.task import (
    NICE_0_LOAD,
    SCHED_PRIO_TO_WEIGHT,
    Task,
    nice_to_weight,
)


class TestWeightTable:
    def test_nice_zero_is_1024(self):
        assert nice_to_weight(0) == NICE_0_LOAD == 1024

    def test_extremes(self):
        assert nice_to_weight(-20) == 88761
        assert nice_to_weight(19) == 15

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            nice_to_weight(-21)
        with pytest.raises(ValueError):
            nice_to_weight(20)

    def test_table_strictly_decreasing(self):
        assert all(
            a > b
            for a, b in zip(SCHED_PRIO_TO_WEIGHT, SCHED_PRIO_TO_WEIGHT[1:])
        )

    def test_roughly_1_25x_per_level(self):
        """The kernel designed the table so each nice level is ~a 10 %
        CPU share step (weight ratio ≈ 1.25)."""
        for a, b in zip(SCHED_PRIO_TO_WEIGHT, SCHED_PRIO_TO_WEIGHT[1:]):
            assert 1.1 < a / b < 1.4


class TestVruntimeDelta:
    def test_nice_zero_identity(self):
        t = Task("t", body=ComputeBody())
        assert t.vruntime_delta(1000.0) == 1000.0

    def test_high_priority_accrues_slower(self):
        hi = Task("hi", body=ComputeBody(), nice=-20)
        lo = Task("lo", body=ComputeBody(), nice=19)
        assert hi.vruntime_delta(1000.0) < 1000.0 < lo.vruntime_delta(1000.0)

    @given(st.integers(min_value=-20, max_value=19),
           st.floats(min_value=0.0, max_value=1e9))
    def test_delta_nonnegative_and_monotone_in_time(self, nice, exec_ns):
        t = Task("t", body=ComputeBody(), nice=nice)
        assert t.vruntime_delta(exec_ns) >= 0.0
        assert t.vruntime_delta(exec_ns + 1.0) > t.vruntime_delta(exec_ns)


class TestTaskIdentity:
    def test_pids_unique(self):
        a = Task("a", body=ComputeBody())
        b = Task("b", body=ComputeBody())
        assert a.pid != b.pid
        assert a != b
        assert a == a

    def test_pin_to(self):
        t = Task("t", body=ComputeBody())
        assert t.can_run_on(0) and t.can_run_on(5)
        t.pin_to(3)
        assert t.can_run_on(3)
        assert not t.can_run_on(2)

    def test_default_timer_slack_is_50us(self):
        assert Task("t", body=ComputeBody()).timer_slack == 50_000.0
