"""Fig 4.7 — temporal resolution on EEVDF (the Fig 4.3b experiment).

The victim must retire only a few instructions per preemption for small
τ, "closely resembling" the CFS result — the transferability claim of
§4.5.
"""

from conftest import banner, row

from repro.analysis.histogram import ascii_histogram
from repro.experiments.resolution import figure_4_7, run_resolution
from repro.experiments.setup import scaled


def test_fig_4_7(run_once):
    preemptions = scaled(80_000, minimum=400)
    runs = run_once(figure_4_7, preemptions_per_tau=preemptions, seed=1)
    banner("Fig 4.7: resolution on EEVDF (nanosleep + evict iTLB)")
    for run in runs:
        print(f"  τ = {run.tau:.0f} ns: {run.stats.describe()}")
    print(ascii_histogram(runs[0].samples))

    best_single = max(r.stats.single_fraction for r in runs)
    row("majority single steps at small τ", "yes (≈ Fig 4.3b)",
        f"{best_single:.0%}")
    assert best_single > 0.5

    # Cross-scheduler comparison at the shared best τ.
    cfs = run_resolution(740.0, degrade_itlb=True,
                         preemptions=min(preemptions, 400), seed=1)
    eevdf = next(r for r in runs if r.tau == 740.0)
    row("EEVDF resembles CFS (median insts/preempt)",
        "same behaviour",
        f"CFS {cfs.stats.median:.0f} vs EEVDF {eevdf.stats.median:.0f}")
    assert abs(cfs.stats.median - eevdf.stats.median) <= 2
