"""Logical core: executes instructions against microarchitectural state.

The core charges each retired instruction a cycle cost assembled from

* the fetch path — iTLB translation (only when the PC crosses into a
  new page) and an I-cache line fill (only when the PC crosses into a
  new line or the line is not resident),
* BTB prediction — a valid colliding entry triggers a target-line
  prefetch (the §5.3 channel) and a misprediction penalty when the
  prediction disagrees with the actual next PC,
* the execute path — D-TLB translation plus data-cache latency for
  loads, a fixed ``lfence`` cost for LVI-fenced instructions.

Interrupt semantics follow hardware: interrupts are taken at
instruction boundaries, so an instruction that has begun executing when
the timer fires still retires.  This boundary rule is what makes the
paper's performance-degradation single-stepping work: a slow first
instruction widens the window in which *exactly one* instruction
retires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.isa import Instruction, InstrKind
from repro.cpu.program import Program
from repro.uarch.address import CACHE_LINE_SIZE, PAGE_SIZE
from repro.uarch.btb import Btb
from repro.uarch.cache import MemoryHierarchy
from repro.uarch.timing import LatencyModel, cycles_to_ns
from repro.uarch.tlb import TlbHierarchy

#: Upper bits preserved when the BTB's 32-bit target is resolved against
#: the fetch region (see Btb docstring / Fig 5.3's 4 GiB padding).
_REGION_MASK = ~((1 << 32) - 1)

#: Inlined address math for the per-instruction fetch path
#: (``pc >> _PAGE_SHIFT == page_number(pc)``,
#: ``pc & _FETCH_LINE_MASK == line_addr(pc)``).
_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
_FETCH_LINE_MASK = ~(CACHE_LINE_SIZE - 1)


@dataclass
class CoreStats:
    instructions_retired: int = 0
    loads: int = 0
    stores: int = 0
    mispredicts: int = 0
    speculative_issues: int = 0
    # Fast-path introspection (telemetry): which arithmetic fast paths
    # engaged, how many instructions they retired without touching
    # μarch state, and how often certification fell back to the
    # per-instruction interpreter.  Plain int adds once per *window*
    # (never per instruction), pulled into gauges at snapshot time.
    ff_steady_windows: int = 0
    ff_warmup_windows: int = 0
    ff_periodic_windows: int = 0
    ff_loop_windows: int = 0
    ff_uniform_bulk_retires: int = 0
    ff_insts_fast_forwarded: int = 0
    ff_periodic_fallbacks: int = 0
    spec_early_outs: int = 0

    def architectural(self):
        """The architecturally-meaningful counters only.

        The ``ff_*``/``spec_*`` introspection fields describe *which
        code path* retired the instructions, so they legitimately differ
        between a fast-forwarded run and its interpreted twin; oracles
        certifying fast-forward equivalence compare this view instead of
        whole-struct equality."""
        return (self.instructions_retired, self.loads, self.stores,
                self.mispredicts, self.speculative_issues)


class Core:
    """One logical core bound to the machine's shared structures."""

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        tlbs: TlbHierarchy,
        btb: Btb,
        latency: LatencyModel,
    ):
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.tlbs = tlbs
        self.btb = btb
        self.latency = latency
        # Hoisted conversion: the latency model is frozen, so the ns
        # cost of a base instruction never changes after construction.
        self._base_inst_ns = cycles_to_ns(latency.base_inst)
        self.stats = CoreStats()
        self._last_fetch_line: Optional[int] = None
        self._last_fetch_page: Optional[int] = None
        self._pipeline_cold = True
        self._warmup_remaining = latency.frontend_warmup_insts
        #: Master switch for every arithmetic fast path (steady, loop,
        #: periodic, uniform bulk retire).  Differential tests disable
        #: it to run the pure per-instruction interpreter as the
        #: bit-identity reference.
        self.fast_forward = True
        # Memoized footprint certificate: (key, l1i.version,
        # itlb.version) of the last successful residency proof.  Version
        # counters only advance when lines *leave* a level, so equal
        # versions re-certify the whole footprint in O(1) instead of
        # re-probing every line and page per preemption window.
        self._ff_cert: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Context switching hooks
    # ------------------------------------------------------------------
    def on_context_switch(self) -> None:
        """Reset fetch locality; the next instruction re-probes I-side
        structures (its line/page may have been evicted meanwhile)."""
        self._last_fetch_line = None
        self._last_fetch_page = None
        self._pipeline_cold = True
        self._warmup_remaining = self.latency.frontend_warmup_insts

    # ------------------------------------------------------------------
    # Instruction execution (victim path)
    # ------------------------------------------------------------------
    def execute(self, asid: int, inst: Instruction) -> float:
        """Execute one instruction for address space ``asid``.

        Returns the cost in **nanoseconds** and applies all
        microarchitectural side effects.
        """
        lat = self.latency
        cycles = float(lat.base_inst)
        if self._pipeline_cold:
            cycles += lat.pipeline_refill
            self._pipeline_cold = False
        if self._warmup_remaining > 0:
            cycles += lat.frontend_warmup_extra
            self._warmup_remaining -= 1
        cycles += self._fetch(asid, inst.pc)
        predicted = self.btb.predict(inst.pc)
        if predicted is not None:
            resolved = (inst.pc & _REGION_MASK) | (predicted & ~_REGION_MASK)
            self.hierarchy.prefetch(self.core_id, resolved, kind="inst")
            if resolved != inst.next_pc:
                cycles += lat.branch_mispredict
                self.stats.mispredicts += 1
        if inst.kind.is_control_transfer:
            if inst.kind is not InstrKind.BRANCH or inst.taken:
                target = inst.target if inst.target is not None else inst.next_pc
                self.btb.on_control_transfer(inst.pc, target)
        else:
            self.btb.on_plain_instruction(inst.pc)
        if inst.kind is InstrKind.LOAD:
            assert inst.mem_addr is not None
            cycles += self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
            cycles += self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.loads += 1
        elif inst.kind is InstrKind.STORE:
            assert inst.mem_addr is not None
            cycles += self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
            self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.stores += 1
        if inst.fenced:
            cycles += lat.lfence
        self.stats.instructions_retired += 1
        return cycles_to_ns(cycles)

    def issue_speculative(self, asid: int, inst: Instruction) -> None:
        """Apply only the cache side effects of a squashed instruction.

        Used for the post-interrupt speculative window: loads beyond the
        retirement boundary still pollute the caches (Fig 5.1's smear)
        but retire nothing and cost the victim no time.
        """
        if inst.kind.is_memory and inst.mem_addr is not None:
            self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.speculative_issues += 1

    def _fetch(self, asid: int, pc: int) -> float:
        """Frontend cost for fetching ``pc``; 0 when staying on a warm line."""
        cycles = 0.0
        page = pc >> _PAGE_SHIFT
        if page != self._last_fetch_page:
            cycles += self.tlbs.translate_fetch(self.core_id, asid, pc)
            self._last_fetch_page = page
        line = pc & _FETCH_LINE_MASK
        if line != self._last_fetch_line:
            latency = self.hierarchy.access(self.core_id, pc, kind="inst")
            if latency > self.latency.l1_hit:
                cycles += latency  # pipelined L1 hits are free; misses stall
            self._last_fetch_line = line
        return cycles

    # ------------------------------------------------------------------
    # Program execution against a deadline (used by the kernel)
    # ------------------------------------------------------------------
    def run_program(
        self,
        asid: int,
        program: Program,
        start: float,
        deadline: float,
        *,
        spec_lookahead: int = 0,
    ) -> Tuple[int, float]:
        """Run ``program`` from ``start`` until an interrupt at ``deadline``.

        Returns ``(instructions_retired, end_time)``.  Per the boundary
        rule, an instruction whose execution straddles the deadline
        still retires, so ``end_time`` may exceed ``deadline``.  After
        the boundary, up to ``spec_lookahead`` further instructions
        issue their memory effects speculatively (suppressed past a
        ``fenced`` instruction).
        """
        t = start
        retired = 0
        fast = self.fast_forward
        while t < deadline:
            if fast:
                if self._warmup_remaining > 0:
                    warm = self._try_warmup_fast_forward(
                        asid, program, t, deadline
                    )
                    if warm:
                        count, t = warm
                        program.retire_bulk(count)
                        self.stats.instructions_retired += count
                        self.stats.ff_warmup_windows += 1
                        self.stats.ff_insts_fast_forwarded += count
                        retired += count
                        continue
                steady = self._try_steady_fast_forward(asid, program, t, deadline)
                if steady:
                    count, t = steady
                    program.retire_bulk(count)
                    self.stats.instructions_retired += count
                    self.stats.ff_steady_windows += 1
                    self.stats.ff_insts_fast_forwarded += count
                    retired += count
                    continue
                periodic = self._try_periodic_fast_forward(
                    asid, program, t, deadline
                )
                if periodic:
                    count, t = periodic
                    retired += count  # retirement applied internally
                    continue
                bulk_loops = self._try_loop_fast_forward(asid, program, t, deadline)
                if bulk_loops:
                    loops, elapsed = bulk_loops
                    profile = program.loop_profile(program.retired)
                    assert profile is not None
                    count = loops * profile.insts_per_loop
                    program.retired += count
                    self.stats.instructions_retired += count
                    self.stats.ff_loop_windows += 1
                    self.stats.ff_insts_fast_forwarded += count
                    retired += count
                    t += elapsed
                    continue
            inst = program.current()
            if inst is None:
                return retired, t  # program finished before the interrupt
            cost = self.execute(asid, inst)
            t += cost
            program.retire()
            retired += 1
            if t >= deadline:
                break
            run = program.uniform_region_length(program.retired) if fast else 0
            if run > 1 and not inst.fenced and self._warmup_remaining == 0:
                per_inst = self._base_inst_ns
                budget = int((deadline - t) / per_inst)
                bulk = min(run, max(budget, 0))
                if bulk > 0:
                    # Uniform straight-line region on a warm line: retire
                    # arithmetically without touching uarch state.
                    program.retire_bulk(bulk)
                    self.stats.instructions_retired += bulk
                    self.stats.ff_uniform_bulk_retires += 1
                    self.stats.ff_insts_fast_forwarded += bulk
                    retired += bulk
                    t += bulk * per_inst
        if spec_lookahead > 0 and retired >= 0:
            self.speculate(asid, program, spec_lookahead)
        return retired, t

    def _try_steady_fast_forward(
        self, asid: int, program: Program, t: float, deadline: float
    ):
        """Whole-window fast-forward for uniform steady-state streams.

        Unlike :meth:`_try_loop_fast_forward` this engages from *any*
        slot: when the program certifies a slot-independent uniform
        stream (every instruction one base cycle) and the loop's full
        footprint is resident, the window is retired by an **arithmetic
        twin** of the per-instruction loop — the same sequence of
        chunk-head additions, uniform-line bulk multiplies and
        whole-loop multiplies the slow path performs, minus the
        microarchitectural work.  Replicating the float accumulation
        exactly keeps end times bit-identical to per-instruction
        execution: vruntime-sensitive schedulers (EEVDF eligibility)
        amplify even ULP-level timing drift into different preemption
        counts.  The straddling instruction past the deadline is
        included (boundary rule).  Returns ``(instructions,
        end_time_ns)`` or None; the caller adopts ``end_time``
        directly.
        """
        if self._pipeline_cold or self._warmup_remaining > 0:
            return None
        state = program.steady_state(program.retired)
        if state is None:
            return None
        profile, certified = state
        if not self._footprint_resident(asid, profile):
            return None
        per_inst = self._base_inst_ns
        idx0 = program.retired
        twin = program.steady_twin
        if twin is not None:
            # The program ships a specialized twin with the same float
            # sequence inlined; the generic loop below is the reference.
            return twin(idx0, t, deadline, per_inst, certified)
        idx = idx0
        while t < deadline:
            loop = program.loop_profile(idx)
            if loop is not None:
                per_loop = cycles_to_ns(loop.cycles_per_loop)
                window = deadline - t
                if window >= 2 * per_loop:
                    loops = int(window / per_loop)
                    if loop.max_loops is not None:
                        loops = min(loops, loop.max_loops)
                    if loops >= 1:
                        idx += loops * loop.insts_per_loop
                        t += loops * per_loop
                        continue
            if certified is not None and idx - idx0 >= certified:
                break  # past the certified region: execute() decides
            t += per_inst  # chunk-head instruction (line warm: base cost)
            idx += 1
            if t >= deadline:
                break
            run = program.uniform_region_length(idx)
            if run > 1:
                budget = int((deadline - t) / per_inst)
                bulk = min(run, budget if budget > 0 else 0)
                if bulk > 0:
                    idx += bulk
                    t += bulk * per_inst
        count = idx - idx0
        if count < 1:
            return None
        return count, t

    def _try_warmup_fast_forward(
        self, asid: int, program: Program, t: float, deadline: float
    ):
        """Arithmetic twin for the frontend warm-up phase of a steady
        window.

        Every preemption window starts with ``frontend_warmup_insts``
        per-instruction executes whose only timing content — once the
        program certifies a uniform steady stream and the loop footprint
        is proven resident — is ``base + frontend_warmup_extra`` cycles
        each (plus ``pipeline_refill`` on the first), because a resident
        footprint makes every fetch free and a steady stream has no
        memory operands, fences or mispredicting transfers.  The twin
        re-adds exactly the per-instruction costs :meth:`execute` would
        have produced (same floats, same order), finishing with the
        uniform-line bulk retire that ``run_program`` performs inside
        the final warm-up iteration, so the optimized path's float
        sequence is unchanged.  Like every forwarded window it skips
        recency touches, hit/miss counters and the loop-back jump's BTB
        refresh (see ARCHITECTURE.md's fast-forward drift contract).

        Returns ``(instructions, end_time_ns)`` or None.
        """
        n = self._warmup_remaining
        if n < 1:
            return None
        idx0 = program.retired
        state = program.steady_state(idx0)
        if state is None:
            return None
        profile, remaining = state
        if remaining is not None and remaining < n + 1:
            return None  # stream may end mid-warm-up: execute() decides
        if not self._footprint_resident(asid, profile):
            return None
        lat = self.latency
        warm_ns = cycles_to_ns(float(lat.base_inst + lat.frontend_warmup_extra))
        executed = 0
        if self._pipeline_cold:
            t += cycles_to_ns(float(
                lat.base_inst + lat.pipeline_refill + lat.frontend_warmup_extra
            ))
            self._pipeline_cold = False
            executed = 1
        while executed < n and t < deadline:
            t += warm_ns
            executed += 1
        self._warmup_remaining = n - executed
        if executed < 1:
            return None
        last = program.instruction_at(idx0 + executed - 1)
        self._last_fetch_page = last.pc >> _PAGE_SHIFT
        self._last_fetch_line = last.pc & _FETCH_LINE_MASK
        idx = idx0 + executed
        if executed == n and t < deadline:
            # The final warm-up iteration of the per-instruction loop
            # ends with ``_warmup_remaining == 0``, so run_program's
            # uniform bulk retire fires before the steady twin engages;
            # reproduce it operation-for-operation.
            run = program.uniform_region_length(idx)
            if run > 1:
                per_inst = self._base_inst_ns
                budget = int((deadline - t) / per_inst)
                bulk = min(run, max(budget, 0))
                if bulk > 0:
                    idx += bulk
                    t += bulk * per_inst
        return idx - idx0, t

    def _footprint_resident(self, asid: int, profile) -> bool:
        """Every loop line in this core's L1I, every page translated.

        A successful proof is memoized against the L1I/iTLB version
        counters: versions only advance when an entry is removed, and
        removals are the only way a resident footprint can stop being
        resident, so unchanged versions re-certify in O(1).
        """
        l1i = self.hierarchy.l1i[self.core_id]
        itlb = self.tlbs.itlb[self.core_id]
        key = (asid, profile.base_pc, profile.insts_per_loop)
        cert = self._ff_cert
        if (cert is not None and cert[0] == key
                and cert[1] == l1i.version and cert[2] == itlb.version):
            return True
        if not (l1i.contains_all(profile.line_addrs)
                and itlb.contains_all(asid, profile.page_vpns)):
            return False
        self._ff_cert = (key, l1i.version, itlb.version)
        return True

    def _try_periodic_fast_forward(
        self, asid: int, program: Program, t: float, deadline: float
    ):
        """Measured fixed-point fast-forward for exactly periodic streams.

        Engages when the program certifies a cyclic period
        (:meth:`Program.period_hint`) — branchy loops, prefetcher-active
        windows — where per-slot uniformity does not hold.  The core

        1. executes one full period per-instruction to settle entry
           effects (fetch locality, BTB warm-up, prefetch fills),
        2. executes and *measures* a second period, recording each
           instruction's exact float cost and snapshotting every level's
           version counter, demand miss counters, the mispredict count
           and the touched BTB entries around it,
        3. if the measured period left all of those unchanged, the uarch
           state is a fixed point over the period: every subsequent full
           period costs the identical float sequence, so it is replayed
           by re-adding the recorded costs (bit-exact — the same
           additions in the same order) with zero microarchitectural
           work.

        Whole periods only: the partial period at the deadline falls
        back to per-instruction execution, so the final machine state is
        reached through real executes and matches the slow path exactly.
        Measurement itself *is* real execution, so a failed certificate
        costs nothing but the snapshot comparison.

        Returns ``(instructions, end_time)`` with retirement and stats
        already applied, or None if the fast path did not engage at all.
        """
        if self._pipeline_cold or self._warmup_remaining > 0:
            return None
        idx0 = program.retired
        period = program.period_hint(idx0)
        if period is None or period < 2:
            return None
        # The window must plausibly cover warm-up + measurement + at
        # least one replayed period, or measurement buys nothing.
        if deadline - t < 3.0 * period * self._base_inst_ns:
            return None
        executed = 0
        execute = self.execute
        retire = program.retire
        current = program.current
        # Period 1: warm.  Entry fetch locality / BTB state differ from
        # the steady phase, so this period is not representative.
        for _ in range(period):
            inst = current()
            if inst is None:
                return (executed, t) if executed else None
            t += execute(asid, inst)
            retire()
            executed += 1
            if t >= deadline:
                return executed, t
        hierarchy = self.hierarchy
        cid = self.core_id
        l1i = hierarchy.l1i[cid]
        l1d = hierarchy.l1d[cid]
        l2 = hierarchy.l2[cid]
        llc = hierarchy.llc
        itlb = self.tlbs.itlb[cid]
        stlb = self.tlbs.stlb[cid]
        levels = (l1i, l1d, l2, llc, itlb, stlb)
        pcs = program.period_pcs(program.retired)
        pre = tuple(v for lvl in levels for v in (lvl.version, lvl.misses))
        pre_mispredicts = self.stats.mispredicts
        pre_btb = self.btb.snapshot(pcs)
        # Period 2: measure.
        costs = []
        append = costs.append
        for _ in range(period):
            inst = current()
            if inst is None:
                return executed, t
            cost = execute(asid, inst)
            t += cost
            retire()
            executed += 1
            append(cost)
            if t >= deadline:
                return executed, t
        post = tuple(v for lvl in levels for v in (lvl.version, lvl.misses))
        if (post != pre or self.stats.mispredicts != pre_mispredicts
                or self.btb.snapshot(pcs) != pre_btb):
            self.stats.ff_periodic_fallbacks += 1
            return executed, t  # no fixed point; the slow path continues
        remaining = program.instructions_remaining(program.retired)
        replayed = 0
        while remaining is None or replayed + period <= remaining:
            tentative = t
            for c in costs:
                tentative += c
            if tentative > deadline:
                break
            t = tentative
            replayed += period
            if t >= deadline:
                break
        if replayed:
            program.retire_bulk(replayed)
            self.stats.instructions_retired += replayed
            self.stats.ff_periodic_windows += 1
            self.stats.ff_insts_fast_forwarded += replayed
            executed += replayed
        return executed, t

    def _try_loop_fast_forward(
        self, asid: int, program: Program, t: float, deadline: float
    ):
        """Whole-loop fast-forward for steady-state tight loops.

        Engages only when (a) the program reports a loop profile at its
        current index, (b) the remaining window covers at least two full
        iterations, and (c) the loop's entire footprint is already
        resident (every line in this core's L1I, every page translated),
        so per-iteration cost is exactly ``cycles_per_loop``.  Returns
        ``(iterations, elapsed_ns)`` or None.
        """
        profile = program.loop_profile(program.retired)
        if profile is None or self._warmup_remaining > 0:
            return None
        per_loop_ns = cycles_to_ns(profile.cycles_per_loop)
        window = deadline - t
        if window < 2 * per_loop_ns:
            return None
        if not self._footprint_resident(asid, profile):
            return None
        loops = int(window / per_loop_ns)
        if profile.max_loops is not None:
            loops = min(loops, profile.max_loops)
        if loops < 1:
            return None
        return loops, loops * per_loop_ns

    def warm_resume(self, asid: int, program: Program, depth: int) -> None:
        """AEX-Notify model (§6, Constable et al.): a trusted in-enclave
        prefetch handler runs after ERESUME, warming the working set of
        the next ``depth`` instructions (lines, translations, data) and
        refilling the frontend, so the enclave makes significant forward
        progress before the next interrupt can land."""
        for offset in range(depth):
            inst = program.instruction_at(program.retired + offset)
            if inst is None:
                break
            self.tlbs.translate_fetch(self.core_id, asid, inst.pc)
            self.hierarchy.access(self.core_id, inst.pc, kind="inst")
            if inst.mem_addr is not None:
                self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
                self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
        self._pipeline_cold = False
        self._warmup_remaining = 0

    def speculate(self, asid: int, program: Program, window: int) -> None:
        """Issue cache effects for up to ``window`` unretired instructions."""
        retired = program.retired
        state = program.steady_state(retired)
        if state is not None and (
                state[1] is None or state[1] >= window):
            # Certified-uniform stream ahead: every instruction in the
            # window is a base-cost (non-memory, unfenced) op, so the
            # scan below would collect nothing.  The victim loops of
            # §4.3 hit this on every preemption.
            self.stats.spec_early_outs += 1
            return
        last_retired = program.instruction_at(retired - 1)
        if last_retired is not None and last_retired.fenced:
            return
        addrs = []
        for offset in range(window):
            inst = program.instruction_at(program.retired + offset)
            if inst is None:
                break
            if inst.fenced:
                # An lfence after the load serializes: neither this load
                # nor anything younger issues before the squash lands.
                break
            if inst.kind.is_memory and inst.mem_addr is not None:
                addrs.append(inst.mem_addr)
        if addrs:
            # One batched walk issues the same accesses in the same
            # order as per-instruction issue_speculative calls.
            self.hierarchy.access_many(self.core_id, addrs, kind="data")
            self.stats.speculative_issues += len(addrs)
