"""The CI overhead guard must degrade gracefully, not crash.

Baseline trouble (missing ref, shallow clone, unrunnable baseline tree)
is harness trouble → SKIP with the how-to-regenerate recipe printed.
The *current* tree failing to run the workload is a real regression →
FAIL.  Both paths used to surface as an unhandled traceback.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

GUARD_PATH = (Path(__file__).resolve().parent.parent
              / "benchmarks" / "overhead_guard.py")


@pytest.fixture()
def guard(monkeypatch):
    spec = importlib.util.spec_from_file_location("overhead_guard",
                                                  GUARD_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_main(guard, monkeypatch, argv):
    monkeypatch.setattr(sys, "argv", ["overhead_guard.py"] + argv)
    return guard.main()


def test_unresolvable_ref_skips_with_recipe(guard, monkeypatch, capsys):
    rc = _run_main(guard, monkeypatch,
                   ["--baseline-ref", "no-such-ref-anywhere"])
    out = capsys.readouterr()
    assert rc == 0
    assert "SKIP" in out.out
    assert "git fetch origin main" in out.err  # actionable, not a traceback


def test_baseline_child_failure_skips_with_recipe(guard, monkeypatch,
                                                  capsys, tmp_path):
    monkeypatch.setattr(guard, "_prepare_baseline", lambda ref, dest: True)
    monkeypatch.setattr(guard, "_remove_baseline", lambda dest: None)

    def fake_time_tree(tree, *, metrics=False):
        if tree != guard.REPO:
            raise guard.TreeTimingError(tree, "ModuleNotFoundError: repro")
        return 1.0

    monkeypatch.setattr(guard, "_time_tree", fake_time_tree)
    rc = _run_main(guard, monkeypatch, ["--baseline-ref", "HEAD"])
    out = capsys.readouterr()
    assert rc == 0
    assert "baseline run failed" in out.err
    assert "fetch-depth: 0" in out.err
    assert "SKIP" in out.out


def test_current_tree_failure_fails_loudly(guard, monkeypatch, capsys):
    monkeypatch.setattr(guard, "_prepare_baseline", lambda ref, dest: True)
    monkeypatch.setattr(guard, "_remove_baseline", lambda dest: None)

    def fake_time_tree(tree, *, metrics=False):
        if tree == guard.REPO:
            raise guard.TreeTimingError(tree, "ImportError in current tree")
        return 1.0

    monkeypatch.setattr(guard, "_time_tree", fake_time_tree)
    rc = _run_main(guard, monkeypatch, ["--baseline-ref", "HEAD"])
    out = capsys.readouterr()
    assert rc == 1
    assert "current tree cannot run the guard workload" in out.err


def test_regression_beyond_threshold_fails(guard, monkeypatch, capsys):
    monkeypatch.setattr(guard, "_prepare_baseline", lambda ref, dest: True)
    monkeypatch.setattr(guard, "_remove_baseline", lambda dest: None)
    times = {"base": 1.0, "curr": 1.5}

    def fake_time_tree(tree, *, metrics=False):
        return times["curr"] if tree == guard.REPO else times["base"]

    monkeypatch.setattr(guard, "_time_tree", fake_time_tree)
    rc = _run_main(guard, monkeypatch,
                   ["--baseline-ref", "HEAD", "--rounds", "1"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out


def test_within_threshold_passes(guard, monkeypatch, capsys):
    monkeypatch.setattr(guard, "_prepare_baseline", lambda ref, dest: True)
    monkeypatch.setattr(guard, "_remove_baseline", lambda dest: None)
    monkeypatch.setattr(guard, "_time_tree",
                        lambda tree, *, metrics=False: 1.0)
    rc = _run_main(guard, monkeypatch,
                   ["--baseline-ref", "HEAD", "--rounds", "1"])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out


def test_garbled_child_output_is_a_timing_error(guard, monkeypatch):
    class FakeProc:
        returncode = 0
        stdout = "not-a-number\n"
        stderr = ""

    monkeypatch.setattr(guard.subprocess, "run",
                        lambda *a, **k: FakeProc())
    with pytest.raises(guard.TreeTimingError, match="seconds value"):
        guard._time_tree(guard.REPO)
