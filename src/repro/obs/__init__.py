"""``repro.obs`` — unified observability for the simulation stack.

Three pillars, all off by default and all guaranteed not to perturb
simulation results (instrumentation never draws randomness and never
changes event timing):

* **metrics** (:mod:`repro.obs.metrics`) — counters/gauges/histograms
  over the sim engine, kernel, schedulers, μarch and attacks, with
  near-zero cost when disabled;
* **tracing** (:mod:`repro.obs.trace`) — bounded span/instant recording
  exported as Chrome trace-event JSON (Perfetto-loadable);
* **manifests** (:mod:`repro.obs.manifest`) — per-run and per-cell JSON
  records (seed, params, version, wall time, metrics snapshot) from
  which any run re-executes bit-identically.

One process-wide default :class:`Observability` is shared by every
component that is not handed an explicit one (``build_env(obs=...)``
overrides per environment).  The default is built from the environment
on first use — ``REPRO_METRICS=1``, ``REPRO_TRACE=1``,
``REPRO_TRACE_CAPACITY=N``, ``REPRO_MANIFEST_DIR=path`` — so process-
pool workers (fork *or* spawn) observe the same configuration as the
parent once the CLI has exported those variables.
"""

from __future__ import annotations

import os
import weakref
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.ring import RingBuffer
from repro.obs.trace import DEFAULT_CAPACITY, EventTracer, validate_chrome_trace

__all__ = [
    "Observability",
    "EventTracer",
    "MetricsRegistry",
    "RingBuffer",
    "configure",
    "get_obs",
    "reset",
    "validate_chrome_trace",
]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


class Observability:
    """Bundle of one metrics registry, one event tracer and the
    manifest output directory."""

    def __init__(
        self,
        *,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        manifest_dir: Optional[str] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry(False)
        self.tracer = tracer if tracer is not None else EventTracer(False)
        self.manifest_dir = manifest_dir
        # Weak reference to the most recently constructed kernel, so
        # pull-based μarch/engine gauges can be published at snapshot
        # time without threading the env through every call site.
        self._kernel_ref: Optional[weakref.ref] = None

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.metrics.enabled or self.tracer.enabled

    def attach_kernel(self, kernel) -> None:
        """Remember ``kernel`` as the publish target (weakly)."""
        self._kernel_ref = weakref.ref(kernel)

    def publish(self) -> None:
        """Pull engine/μarch statistics into gauges (no-op when metrics
        are disabled or no kernel has been built yet).  With tracing on,
        every scalar is also emitted as a Perfetto counter-track point
        stamped at the current simulated time, so repeated publishes
        build stepped throughput/coverage charts alongside the spans."""
        if not self.metrics.enabled or self._kernel_ref is None:
            return
        kernel = self._kernel_ref()
        if kernel is None:
            return
        from repro.obs.collect import publish_kernel_metrics

        publish_kernel_metrics(kernel, self.metrics)
        if self.tracer.enabled:
            from repro.obs.metrics import Histogram

            now = kernel.sim.now
            for name in self.metrics.names():
                metric = self.metrics.get(name)
                if not isinstance(metric, Histogram):
                    self.tracer.counter(name, now, 0, metric.value)

    @classmethod
    def from_env(cls) -> "Observability":
        capacity = DEFAULT_CAPACITY
        raw = os.environ.get("REPRO_TRACE_CAPACITY", "").strip()
        if raw:
            capacity = max(1, int(raw))
        manifest_dir = os.environ.get("REPRO_MANIFEST_DIR", "").strip() or None
        return cls(
            metrics=MetricsRegistry(enabled=_env_flag("REPRO_METRICS")),
            tracer=EventTracer(enabled=_env_flag("REPRO_TRACE"),
                               capacity=capacity),
            manifest_dir=manifest_dir,
        )


_default: Optional[Observability] = None


def get_obs() -> Observability:
    """The process-wide default :class:`Observability` (env-configured
    on first use)."""
    global _default
    if _default is None:
        _default = Observability.from_env()
    return _default


def configure(
    *,
    metrics: bool = False,
    trace: bool = False,
    trace_capacity: Optional[int] = DEFAULT_CAPACITY,
    manifest_dir: Optional[str] = None,
) -> Observability:
    """Install (and return) a fresh default :class:`Observability`."""
    global _default
    _default = Observability(
        metrics=MetricsRegistry(enabled=metrics),
        tracer=EventTracer(enabled=trace, capacity=trace_capacity),
        manifest_dir=manifest_dir,
    )
    return _default


def reset() -> None:
    """Drop the default so the next :func:`get_obs` re-reads the
    environment (used by tests and the CLI)."""
    global _default
    _default = None
