"""Kernel edge cases: cross-CPU wakes, migrations, exits, idle."""

from repro.experiments.setup import build_env
from repro.kernel import actions as act
from repro.kernel.threads import ComputeBody, CoroutineBody, ProgramBody
from repro.cpu.program import StraightlineProgram
from repro.sched.task import Task, TaskState

MS = 1_000_000


class TestCrossCpuWake:
    def test_wake_respects_affinity_changed_while_sleeping(self):
        """A timer fires on the CPU that armed it; if the task was
        meanwhile pinned elsewhere, the wake must enqueue it there."""
        env = build_env(n_cores=2, seed=0)

        def sleeper():
            yield act.Nanosleep(5 * MS)
            yield act.Compute(1 * MS)
            yield act.Exit()

        task = Task("sleeper", body=CoroutineBody(sleeper()))
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(
            predicate=lambda: task.state is TaskState.SLEEPING, max_time=1e9
        )
        task.pin_to(1)  # sched_setaffinity while blocked
        env.kernel.run_until(
            predicate=lambda: task.state is TaskState.EXITED, max_time=1e9
        )
        assert task.cpu == 1

    def test_wake_onto_idle_cpu_runs_promptly(self):
        env = build_env(n_cores=2, seed=0)
        busy = Task("busy", body=ComputeBody())
        busy.pin_to(0)
        env.kernel.spawn(busy, cpu=0)

        wake_to_run = []

        def sleeper():
            yield act.SetTimerSlack(1.0)
            yield act.Nanosleep(5 * MS)
            now = yield act.GetTime()
            wake_to_run.append(now)
            yield act.Exit()

        task = Task("sleeper", body=CoroutineBody(sleeper()))
        task.pin_to(1)
        env.kernel.spawn(task, cpu=1)
        env.kernel.run_until(
            predicate=lambda: task.state is TaskState.EXITED, max_time=1e9
        )
        assert wake_to_run
        # Runs within microseconds of the 5 ms expiry, on its own CPU.
        assert wake_to_run[0] < 5 * MS + 100_000


class TestExitPaths:
    def test_cpu_goes_idle_after_last_exit(self):
        env = build_env(seed=0)

        def quick():
            yield act.Compute(1000.0)
            yield act.Exit()

        task = Task("quick", body=CoroutineBody(quick()))
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(max_time=10 * MS)
        assert task.state is TaskState.EXITED
        assert env.kernel.cpus[0].rq.current is None
        assert env.kernel.cpus[0].rq.nr_running == 0

    def test_next_task_runs_after_exit(self):
        env = build_env(seed=0)

        def quick():
            yield act.Compute(1000.0)
            yield act.Exit()

        first = Task("first", body=CoroutineBody(quick()))
        second = Task("second", body=ComputeBody())
        env.kernel.spawn(first, cpu=0)
        env.kernel.spawn(second, cpu=0)
        env.kernel.run_until(max_time=10 * MS)
        assert first.state is TaskState.EXITED
        assert second.sum_exec_runtime > 8 * MS

    def test_program_victim_exit_recorded(self):
        env = build_env(seed=0)
        victim = Task("v", body=ProgramBody(StraightlineProgram(total=100)))
        env.kernel.spawn(victim, cpu=0)
        env.kernel.run_until(
            predicate=lambda: victim.state is TaskState.EXITED, max_time=1e9
        )
        exits = [s for s in env.tracer.switches
                 if s.prev_pid == victim.pid and s.reason == "exit"]
        assert len(exits) == 1


class TestIdleWakeLatency:
    def test_timer_on_idle_cpu_fires(self):
        """An idle CPU must wake itself up for a pending timer."""
        env = build_env(seed=0)
        fired = []

        def napper():
            yield act.Nanosleep(3 * MS)
            now = yield act.GetTime()
            fired.append(now)
            yield act.Exit()

        task = Task("napper", body=CoroutineBody(napper()))
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(max_time=1e9)
        assert fired and fired[0] >= 3 * MS

    def test_spawn_errors(self):
        env = build_env(seed=0)
        import pytest

        with pytest.raises(ValueError):
            env.kernel.spawn(Task("nobody", body=None))


class TestSpawnWakePlacement:
    def test_wake_placement_spawn_uses_eq_2_1(self):
        env = build_env(seed=0)
        runner = Task("runner", body=ComputeBody())
        env.kernel.spawn(runner, cpu=0)
        env.kernel.run_until(max_time=100 * MS)
        woken = Task("woken", body=ComputeBody())
        env.kernel.spawn(woken, cpu=0, wake_placement=True, sleep_vruntime=0.0)
        # Placed a full S_slack behind, not at min_vruntime.
        assert woken.vruntime <= runner.vruntime - env.params.s_slack + 1e3

    def test_fork_placement_gets_no_credit(self):
        env = build_env(seed=0)
        runner = Task("runner", body=ComputeBody())
        env.kernel.spawn(runner, cpu=0)
        env.kernel.run_until(max_time=100 * MS)
        forked = Task("forked", body=ComputeBody())
        env.kernel.spawn(forked, cpu=0)
        assert forked.vruntime >= runner.vruntime - env.params.s_min * 2


class TestInterruptStorm:
    def test_short_period_timer_does_not_starve_switches(self):
        """A periodic timer with interval below the IRQ-path cost is an
        interrupt storm; a woken task's context switch must still go
        through in the same dispatch (livelock regression test)."""
        env = build_env(seed=0)
        victim = Task("victim", body=ComputeBody())
        wakes = []

        def body():
            yield act.Nanosleep(50 * MS)  # sleeper credit
            yield act.TimerCreate(500.0)  # interval << irq path
            for _ in range(5):
                yield act.Pause()
                now = yield act.GetTime()
                wakes.append(now)
            yield act.TimerCancel()
            yield act.Exit()

        task = Task("stormy", body=CoroutineBody(body()))
        env.kernel.spawn(victim, cpu=0)
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(
            predicate=lambda: task.state is TaskState.EXITED,
            max_time=200 * MS,
        )
        assert task.state is TaskState.EXITED
        assert len(wakes) == 5
        # Wake-to-wake spacing is set by the IRQ/switch path, not by a
        # runaway backlog: microseconds, never milliseconds.
        gaps = [b - a for a, b in zip(wakes, wakes[1:])]
        assert all(gap < 100_000 for gap in gaps)
