"""The chaos engine: deterministic fault schedules (repro.chaos).

The contract under test: a fault decision is a pure function of
``(spec.seed, injection point, call identity)`` — replaying the same
schedule injects the same faults, scripted events beat rate draws, and
the injection points wired into CellCache actually corrupt/stall the
way docs/CHAOS.md promises.
"""

import os

import pytest

from repro.chaos import (
    INJECTION_POINTS,
    ChaosEngine,
    ChaosSpec,
    FaultEvent,
    active_engine,
    chaos_point,
    load_spec,
    reset_active,
    service_fault,
)
from repro.obs.cellcache import CellCache


def _activate(tmp_path, spec: ChaosSpec) -> str:
    path = str(tmp_path / "chaos.json")
    spec.save(path)
    os.environ["REPRO_CHAOS"] = path
    reset_active()
    return path


# ----------------------------------------------------------------------
# Spec validation and round-trip
# ----------------------------------------------------------------------
def test_spec_round_trips_through_json(tmp_path):
    spec = ChaosSpec(
        seed=42,
        rates={"cellcache.fetch": {"corrupt": 0.25}},
        params={"stall_sleep_s": 0.01},
        events=[FaultEvent(point="service.cell", kind="worker_kill",
                           match={"seed": 7, "attempt": 0})],
        max_faults=3,
    )
    path = str(tmp_path / "chaos.json")
    spec.save(path)
    loaded = load_spec(path)
    assert loaded.to_dict() == spec.to_dict()


def test_spec_rejects_unknown_points_and_bad_rates():
    with pytest.raises(ValueError):
        ChaosSpec(rates={"nonsense.point": {"corrupt": 0.1}})
    with pytest.raises(ValueError):
        ChaosSpec(rates={"cellcache.fetch": {"stall": 0.1}})  # wrong kind
    with pytest.raises(ValueError):
        ChaosSpec(rates={"cellcache.fetch": {"corrupt": 1.5}})
    with pytest.raises(ValueError):
        FaultEvent.from_dict({"point": "service.cell", "kind": "corrupt"})


def test_injection_point_catalogue_is_closed():
    # Every event/rate must name one of these; docs/CHAOS.md documents
    # exactly this table.
    assert set(INJECTION_POINTS) == {
        "service.cell", "runner.tick", "cellcache.fetch",
        "cellcache.store", "client.frame",
    }


# ----------------------------------------------------------------------
# Decision determinism
# ----------------------------------------------------------------------
def test_rate_draws_are_pure_functions_of_identity():
    spec = ChaosSpec(seed=9, rates={"cellcache.fetch": {"corrupt": 0.5}})
    decisions = {}
    for key in range(200):
        fault = ChaosEngine(spec).decide(
            "cellcache.fetch", {"key": f"k{key}"})
        decisions[key] = None if fault is None else fault["kind"]
    # A fresh engine replays the identical schedule.
    for key in range(200):
        fault = ChaosEngine(spec).decide(
            "cellcache.fetch", {"key": f"k{key}"})
        assert (None if fault is None else fault["kind"]) == decisions[key]
    fired = sum(1 for kind in decisions.values() if kind == "corrupt")
    assert 0 < fired < 200  # a 0.5 rate fires sometimes, not always


def test_different_seeds_draw_different_schedules():
    identities = [{"key": f"k{i}"} for i in range(64)]

    def schedule(seed):
        engine = ChaosEngine(ChaosSpec(
            seed=seed, rates={"cellcache.fetch": {"corrupt": 0.5}}))
        return tuple(
            engine.decide("cellcache.fetch", ident) is not None
            for ident in identities)

    assert schedule(1) != schedule(2)


def test_scripted_events_beat_rate_draws_and_match_subsets():
    spec = ChaosSpec(
        seed=0,
        rates={"service.cell": {"timeout": 0.0}},
        events=[FaultEvent(point="service.cell", kind="worker_kill",
                           match={"seed": 123, "attempt": 0})],
    )
    engine = ChaosEngine(spec)
    hit = engine.decide("service.cell",
                        {"experiment": "resolution", "seed": 123,
                         "attempt": 0})
    assert hit == {"kind": "worker_kill"}
    # attempt 1 (the retry) does not match: the kill fires exactly once.
    assert engine.decide("service.cell",
                         {"experiment": "resolution", "seed": 123,
                          "attempt": 1}) is None
    assert engine.decide("service.cell",
                         {"experiment": "resolution", "seed": 999,
                          "attempt": 0}) is None


def test_max_faults_caps_execution_not_decisions():
    spec = ChaosSpec(seed=3, rates={"cellcache.fetch": {"corrupt": 1.0}},
                     max_faults=2)
    engine = ChaosEngine(spec)
    fired = [engine.decide("cellcache.fetch", {"key": f"k{i}"})
             for i in range(5)]
    assert [f is not None for f in fired] == [True, True, False,
                                              False, False]
    assert engine.fired == 2


def test_timeout_and_stall_carry_sleep_params():
    spec = ChaosSpec(seed=0, params={"timeout_sleep_s": 0.125},
                     events=[FaultEvent(point="service.cell",
                                        kind="timeout")])
    fault = ChaosEngine(spec).decide("service.cell", {"attempt": 0})
    assert fault == {"kind": "timeout", "sleep_s": 0.125}
    # Per-event params override the spec default.
    spec = ChaosSpec(seed=0, events=[FaultEvent(
        point="cellcache.store", kind="stall",
        params={"sleep_s": 0.01})])
    fault = ChaosEngine(spec).decide("cellcache.store", {"key": "k"})
    assert fault == {"kind": "stall", "sleep_s": 0.01}


# ----------------------------------------------------------------------
# Env activation
# ----------------------------------------------------------------------
def test_active_engine_reads_env_and_memoizes(tmp_path):
    assert os.environ.get("REPRO_CHAOS") is None or True
    os.environ.pop("REPRO_CHAOS", None)
    reset_active()
    assert active_engine() is None
    _activate(tmp_path, ChaosSpec(
        seed=1, events=[FaultEvent(point="runner.tick", kind="abort",
                                   match={"completed": 2})]))
    engine = active_engine()
    assert engine is not None
    assert active_engine() is engine  # memoized
    assert chaos_point("runner.tick", completed=2) == {"kind": "abort"}
    assert chaos_point("runner.tick", completed=1) is None


def test_unreadable_manifest_disables_chaos_without_crashing(tmp_path):
    bad = tmp_path / "broken.json"
    bad.write_text("{not json")
    os.environ["REPRO_CHAOS"] = str(bad)
    reset_active()
    assert active_engine() is None
    assert chaos_point("runner.tick", completed=1) is None


def test_service_fault_maps_to_execute_cell_descriptors(tmp_path):
    _activate(tmp_path, ChaosSpec(events=[
        FaultEvent(point="service.cell", kind="worker_kill",
                   match={"seed": 5, "attempt": 0}),
        FaultEvent(point="service.cell", kind="timeout",
                   match={"seed": 6}, params={"sleep_s": 0.05}),
    ]))
    assert service_fault("resolution", {"seed": 5}, 0) == {"die": True}
    assert service_fault("resolution", {"seed": 5}, 1) is None
    assert service_fault("resolution", {"seed": 6}, 0) == {"sleep_s": 0.05}
    assert service_fault("resolution", {"seed": 7}, 0) is None


# ----------------------------------------------------------------------
# CellCache injection points
# ----------------------------------------------------------------------
def test_chaos_corrupts_cache_fetch_into_recompute(tmp_path):
    cache = CellCache(str(tmp_path / "cache"))
    key = cache.key_for("demo", {"seed": 1})
    cache.store(key, "demo", {"value": 41})
    assert cache.fetch(key) == (True, {"value": 41})

    _activate(tmp_path, ChaosSpec(
        rates={"cellcache.fetch": {"corrupt": 1.0}}))
    status, result = cache.fetch_outcome(key)
    # The flipped byte must be *detected* — corrupt, never a wrong hit.
    assert status == "corrupt" and result is None

    os.environ.pop("REPRO_CHAOS", None)
    reset_active()
    # The on-disk entry itself was never modified.
    assert cache.fetch(key) == (True, {"value": 41})


def test_chaos_stalls_store_while_holding_the_lock(tmp_path):
    import time

    cache = CellCache(str(tmp_path / "cache"))
    key = cache.key_for("demo", {"seed": 2})
    _activate(tmp_path, ChaosSpec(
        rates={"cellcache.store": {"stall": 1.0}},
        params={"stall_sleep_s": 0.2}))
    start = time.monotonic()
    path = cache.store(key, "demo", {"value": 42})
    elapsed = time.monotonic() - start
    assert path is not None
    assert elapsed >= 0.2  # the stall really held the store
    os.environ.pop("REPRO_CHAOS", None)
    reset_active()
    assert cache.fetch(key) == (True, {"value": 42})
