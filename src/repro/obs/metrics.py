"""Metrics registry: counters, gauges, fixed-bucket histograms.

The design rule is *near-zero cost when disabled*: a disabled registry
hands out shared null instruments whose ``inc``/``set``/``observe`` are
empty methods, and registers nothing.  Instrumented code grabs its
instruments once (at construction) and calls them unconditionally, so
the disabled-mode cost of an instrumentation site is one no-op method
call on an event that already costs orders of magnitude more — and the
per-instruction hot paths are never instrumented at all (μarch stats
are *pulled* from the existing hit/miss counters at snapshot time, see
:mod:`repro.obs.collect`).

Metric names are dotted paths (``kernel.switch.preempt_wakeup``);
:meth:`MetricsRegistry.snapshot` returns a plain JSON-safe dict and
:meth:`MetricsRegistry.render` a human table for ``repro stats``.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins scalar (set at snapshot/publish time)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default bucket upper bounds (ns-flavoured, powers of ten).
DEFAULT_BUCKETS = (1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are upper bounds of the finite buckets; one overflow
    bucket is implicit.  Buckets are fixed at creation — no dynamic
    resizing, so ``observe`` is a single bisect plus integer adds.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram buckets must be sorted: {buckets}")
        self.name = name
        self.bounds = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one
        (bucket-wise add) — used when per-cell telemetry registries are
        folded back into the process-wide registry."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> dict:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": buckets,
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, n: Union[int, float] = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, or shared null instruments when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Instrument factories (idempotent per name)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = Histogram(name, buckets)
        elif not isinstance(existing, Histogram):
            raise TypeError(f"metric {name!r} is {type(existing).__name__}")
        return existing

    def _get(self, name: str, cls):
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = cls(name)
        elif not isinstance(existing, cls):
            raise TypeError(f"metric {name!r} is {type(existing).__name__}")
        return existing

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, name: str):
        """The registered instrument named ``name``, or None."""
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of every registered instrument."""
        out: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self) -> str:
        """Human-readable table for ``repro stats`` / ``--metrics``."""
        if not self._metrics:
            return "(no metrics recorded)"
        lines = []
        width = max(len(name) for name in self._metrics)
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                value = (f"count={metric.count} mean={metric.mean:,.1f} "
                         f"min={metric.min if metric.min is not None else '-'} "
                         f"max={metric.max if metric.max is not None else '-'}")
            elif isinstance(metric.value, float):  # type: ignore[union-attr]
                value = f"{metric.value:,.3f}"  # type: ignore[union-attr]
            else:
                value = f"{metric.value:,}"  # type: ignore[union-attr]
            lines.append(f"{name:<{width}}  {value}")
        return "\n".join(lines)

    def reset(self) -> None:
        self._metrics.clear()
