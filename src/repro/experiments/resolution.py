"""Temporal-resolution experiments (Fig 4.3 a/b/c and Fig 4.7).

The victim is the paper's same-byte-length instruction loop; resolution
is the victim's retired-instruction delta between attacker
interleavings, recorded by the tracer exactly like the paper's eBPF
probe.  One run per (wake-up method, degradation, τ) cell produces a
histogram; the figure functions sweep τ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.histogram import ResolutionStats, resolution_stats
from repro.core.degradation import TlbEvictor
from repro.core.primitive import ControlledPreemption, PreemptionConfig
from repro.core.wakeup import WakeupMethod
from repro.cpu.program import StraightlineProgram
from repro.experiments.setup import build_env
from repro.kernel.threads import ProgramBody
from repro.obs import get_obs
from repro.parallel import derive_seed, starmap_kwargs
from repro.sched.task import Task, TaskState
from repro.victims.layout import ATTACKER_TLB_ARENA

#: τ values (ns) used for the figure sweeps.  Chosen the way the
#: paper's attacker chooses them: a fine sweep around the scheduling
#: overhead (the "Goldilocks" zone of §4.2).  Larger τ trades zero
#: steps for more victim progress per preemption.  Method 2's zone sits
#: ~2 µs higher: a periodic timer's interval must cover the full
#: signal-delivery round trip, or every expiry is an overrun.
FIG_4_3A_TAUS = (700.0, 720.0, 740.0, 760.0)
FIG_4_3B_TAUS = (740.0, 760.0, 780.0, 800.0)
FIG_4_3C_TAUS = (2720.0, 2740.0, 2760.0, 2780.0)


@dataclass
class ResolutionRun:
    """One histogram cell."""

    tau: float
    method: WakeupMethod
    degraded: bool
    scheduler: str
    samples: List[int]

    @property
    def stats(self) -> ResolutionStats:
        return resolution_stats(self.samples)


def run_resolution(
    tau: float,
    *,
    method: WakeupMethod = WakeupMethod.NANOSLEEP,
    degrade_itlb: bool = False,
    scheduler: str = "cfs",
    preemptions: int = 1000,
    seed: int = 0,
) -> ResolutionRun:
    """Measure instructions retired per preemption for one setting.

    The attacker re-hibernates as many times as needed (budget refills)
    until ``preemptions`` samples are collected; the paper's 80 000-
    preemption histograms are the aggregate of such episodes.
    """
    env = build_env(scheduler, n_cores=1, seed=seed)
    program = StraightlineProgram()
    victim = Task("victim", body=ProgramBody(program))
    degrader = (
        TlbEvictor(program.base_pc, ATTACKER_TLB_ARENA) if degrade_itlb else None
    )
    samples: List[int] = []
    env.kernel.spawn(victim, cpu=0)
    episode = 0
    m_episodes = get_obs().metrics.counter("attack.episodes")
    while len(samples) < preemptions and episode < 64:
        m_episodes.inc()
        attacker = ControlledPreemption(
            PreemptionConfig(
                nap_ns=tau,
                rounds=preemptions - len(samples),
                hibernate_ns=120e6,  # > 2·S_bnd; episodes refill the budget
                method=method,
                stop_on_exhaustion=True,
            ),
            degrader=degrader,
            name=f"attacker{episode}",
        )
        attacker.launch(env.kernel, 0)
        env.kernel.run_until(
            predicate=lambda: attacker.task.state is TaskState.EXITED,
            max_time=env.kernel.now + 10e9,
        )
        new = env.tracer.retired_per_preemption(victim.pid, attacker.task.pid)
        # The first delta of an episode spans the hibernation (the victim
        # ran alone); the paper's measurement starts "from when the
        # attacker begins launching interrupts", so drop it.
        samples.extend(new[1:])
        episode += 1
    return ResolutionRun(
        tau=tau,
        method=method,
        degraded=degrade_itlb,
        scheduler=scheduler,
        samples=samples[:preemptions],
    )


def tau_sweep(
    taus: Sequence[float],
    *,
    method: WakeupMethod = WakeupMethod.NANOSLEEP,
    degrade_itlb: bool = False,
    scheduler: str = "cfs",
    preemptions: int = 1000,
    seed: int = 0,
    sweep_name: str = "tau_sweep",
    jobs: Optional[int] = None,
) -> List[ResolutionRun]:
    """One τ sweep: an independent :func:`run_resolution` cell per τ.

    Each cell's seed is ``derive_seed(seed, sweep_name, tau)`` — a
    stable function of the cell's identity, never of execution order —
    so a parallel sweep is bit-identical to a serial one.
    """
    cells = [
        dict(
            tau=tau,
            method=method,
            degrade_itlb=degrade_itlb,
            scheduler=scheduler,
            preemptions=preemptions,
            seed=derive_seed(seed, sweep_name, tau),
        )
        for tau in taus
    ]
    return starmap_kwargs(run_resolution, cells, jobs=jobs)


def figure_4_3(
    *,
    preemptions_per_tau: int = 1000,
    seed: int = 0,
    taus_a: Sequence[float] = FIG_4_3A_TAUS,
    taus_b: Sequence[float] = FIG_4_3B_TAUS,
    taus_c: Sequence[float] = FIG_4_3C_TAUS,
    jobs: Optional[int] = None,
) -> Dict[str, List[ResolutionRun]]:
    """All three panels of Fig 4.3 on the CFS.

    All cells across the three panels go through one parallel map so a
    pool is saturated even when individual panels are short.
    """
    plan = (
        [("a", dict(tau=tau, preemptions=preemptions_per_tau,
                    seed=derive_seed(seed, "fig4.3a", tau)))
         for tau in taus_a]
        + [("b", dict(tau=tau, degrade_itlb=True, preemptions=preemptions_per_tau,
                      seed=derive_seed(seed, "fig4.3b", tau)))
           for tau in taus_b]
        + [("c", dict(tau=tau, method=WakeupMethod.TIMER,
                      preemptions=preemptions_per_tau,
                      seed=derive_seed(seed, "fig4.3c", tau)))
           for tau in taus_c]
    )
    runs = starmap_kwargs(run_resolution, [kw for _, kw in plan], jobs=jobs)
    panels: Dict[str, List[ResolutionRun]] = {"a": [], "b": [], "c": []}
    for (panel, _), run in zip(plan, runs):
        panels[panel].append(run)
    return panels


def figure_4_7(
    *, preemptions_per_tau: int = 1000, seed: int = 0,
    taus: Sequence[float] = FIG_4_3B_TAUS,
    jobs: Optional[int] = None,
) -> List[ResolutionRun]:
    """Fig 4.7: the Fig 4.3b experiment on EEVDF."""
    return tau_sweep(
        taus,
        degrade_itlb=True,
        scheduler="eevdf",
        preemptions=preemptions_per_tau,
        seed=seed,
        sweep_name="fig4.7",
        jobs=jobs,
    )
