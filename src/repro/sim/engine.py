"""Event-heap simulator core.

The simulator keeps a binary heap of :class:`Event` records ordered by
``(time, priority, sequence)``.  ``sequence`` is a monotonically
increasing integer, so events scheduled at the same instant run in
scheduling order, which makes the whole simulation deterministic.

Time is a ``float`` number of nanoseconds since simulation start.  All
kernel and scheduler quantities in this project are expressed in
nanoseconds; microarchitectural quantities are expressed in cycles and
converted through :data:`repro.uarch.timing.CPU_FREQ_GHZ`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events compare by ``(time, priority, seq)``.  Lower priority values
    run first among events at the same timestamp; the default priority
    of 0 is fine for nearly everything.  Interrupt delivery uses a
    negative priority so that a timer firing at exactly the instant a
    task would block is handled interrupt-first, as on real hardware.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_at(10.0, lambda: fired.append(sim.now))
    >>> _ = sim.call_after(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0, 10.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``.

        Scheduling in the past is an error: it would silently reorder
        history and mask bugs in the caller.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ns; simulation time is "
                f"already {self._now} ns"
            )
        event = Event(time, priority, next(self._seq), callback, label=label)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def call_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, priority=priority, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        event.callback()
        return True

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains.  Returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: float, *, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= ``time``; advance clock to ``time``.

        Events scheduled exactly at ``time`` do run.  After the call the
        clock reads ``time`` even if the heap drained earlier, so
        callers can interleave event-driven and computed phases.
        """
        count = 0
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > time:
                break
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                return count
        if time > self._now:
            self._now = time
        return count

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
