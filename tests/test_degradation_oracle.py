"""Performance degradation and measurement oracles (§4.2/§4.3)."""

import statistics

from repro.analysis.histogram import resolution_stats
from repro.core.degradation import CodeLineStaller, CompositeDegrader, TlbEvictor
from repro.core.oracle import OracleGatedMeasurer, VictimPresenceOracle, ZeroStepFilter
from repro.core.primitive import ControlledPreemption, PreemptionConfig
from repro.cpu.program import StraightlineProgram
from repro.experiments.setup import build_env
from repro.kernel.threads import ProgramBody
from repro.sched.task import Task, TaskState
from repro.uarch.cache import HierarchyGeometry
from repro.victims.layout import ATTACKER_LLC_ARENA, ATTACKER_TLB_ARENA


def run_resolution(tau, degrader, rounds=300, seed=7):
    env = build_env("cfs", n_cores=1, seed=seed)
    program = StraightlineProgram()
    victim = Task("victim", body=ProgramBody(program))
    attacker = ControlledPreemption(
        PreemptionConfig(nap_ns=tau, rounds=rounds, stop_on_exhaustion=False),
        degrader=degrader,
    )
    env.kernel.spawn(victim, cpu=0)
    attacker.launch(env.kernel, 0)
    env.kernel.run_until(
        predicate=lambda: attacker.task.state is TaskState.EXITED,
        max_time=30e9,
    )
    samples = env.tracer.retired_per_preemption(victim.pid, attacker.task.pid)
    return samples[1:-1], program


class TestTlbEvictor:
    def test_eviction_sets_cover_both_levels(self):
        evictor = TlbEvictor(0x400000, ATTACKER_TLB_ARENA)
        assert len(evictor.itlb_pages) == 8
        assert len(evictor.stlb_pages) == 12
        assert evictor.pages_touched == 20

    def test_degradation_improves_single_step_rate(self):
        """§4.3b: with iTLB eviction a larger τ still yields mostly
        single steps; without it the same τ smears to tens."""
        tau = 780.0
        program_pc = StraightlineProgram().base_pc
        plain, _ = run_resolution(tau, None)
        degraded, _ = run_resolution(
            tau, TlbEvictor(program_pc, ATTACKER_TLB_ARENA)
        )
        assert statistics.median(degraded) < statistics.median(plain)
        stats = resolution_stats(degraded)
        assert stats.under_10_fraction + stats.single_fraction > 0.5

    def test_single_step_majority_at_calibrated_tau(self):
        program_pc = StraightlineProgram().base_pc
        samples, _ = run_resolution(
            740.0, TlbEvictor(program_pc, ATTACKER_TLB_ARENA)
        )
        stats = resolution_stats(samples)
        assert stats.single_fraction > 0.5  # Fig 4.3b's headline


class TestCodeLineStaller:
    def test_eviction_set_is_congruent_and_oversized(self):
        llc = HierarchyGeometry().llc
        staller = CodeLineStaller(llc, 0x400000, ATTACKER_LLC_ARENA)
        assert len(staller.eviction_set) == llc.n_ways + 2
        want = llc.set_index(0x400000)
        assert all(llc.set_index(a) == want for a in staller.eviction_set)

    def test_priming_purges_the_victim_line(self):
        env = build_env(seed=0)
        hierarchy = env.machine.hierarchy
        target = 0x400000
        hierarchy.access(0, target, kind="inst")
        staller = CodeLineStaller(
            env.machine.config.geometry.llc, target, ATTACKER_LLC_ARENA
        )
        for addr in staller.eviction_set:
            hierarchy.access(0, addr, kind="data")
        assert not hierarchy.is_cached_anywhere(target)

    def test_composite_runs_all(self):
        llc = HierarchyGeometry().llc
        one = CodeLineStaller(llc, 0x400000, ATTACKER_LLC_ARENA)
        two = CodeLineStaller(llc, 0x400040, ATTACKER_LLC_ARENA + 0x10_0000)
        actions = list(CompositeDegrader(one, two).degrade())
        assert len(actions) == len(one.eviction_set) + len(two.eviction_set)


class TestZeroStepFilter:
    def test_none_is_zero_step(self):
        assert ZeroStepFilter.is_zero_step(None)

    def test_all_false_hits_is_zero_step(self):
        assert ZeroStepFilter.is_zero_step([False, False])

    def test_any_hit_is_progress(self):
        assert not ZeroStepFilter.is_zero_step([False, True])

    def test_filter_drops_only_zero_steps(self):
        payloads = [[True], [False], None, [False, True]]
        assert ZeroStepFilter.filter(payloads) == [[True], [False, True]]


class TestVictimPresenceOracle:
    def test_requires_template(self):
        import pytest

        with pytest.raises(ValueError):
            VictimPresenceOracle([])

    def test_detects_presence_in_simulation(self):
        """Drive the oracle generator by hand against machine state."""
        from repro.kernel import actions as act
        from repro.uarch.timing import LATENCY

        env = build_env(seed=0)
        hierarchy = env.machine.hierarchy
        line = 0x400000
        oracle = VictimPresenceOracle([line])

        def drive(present):
            hierarchy.clflush(line)
            if present:
                hierarchy.access(0, line)
            gen = oracle.measure()
            action = next(gen)
            result = None
            try:
                while True:
                    if isinstance(action, act.TimedLoad):
                        latency = hierarchy.access(0, action.addr)
                        action = gen.send(float(latency))
                    elif isinstance(action, act.Flush):
                        hierarchy.clflush(action.addr)
                        action = gen.send(None)
                    else:
                        raise AssertionError(action)
            except StopIteration as stop:
                result = stop.value
            return result

        assert drive(present=True) is True
        assert drive(present=False) is False
