"""BTB Train+Probe gadgets (§5.3, Fig 5.3; after Zhang et al.'s
BunnyHop and Yu et al.'s NightVision).

The channel encodes branch-predictor state into cache state, avoiding
noisy rdtsc-on-branch measurements:

* **Train** — execute a direct JMP at ``prime_pc``, where
  ``low32(prime_pc) == low32(victim_pc)`` (the gadget sits exactly
  4 GiB from the victim instruction).  This allocates a BTB entry that
  collides with the victim instruction of interest.
* Victim runs.  If it executed the (non-control-transfer) instruction
  at ``victim_pc``, the colliding entry is **invalidated**.
* **Probe** — flush a marker line ``T2``; execute a RET at
  ``probe_pc`` (8 GiB from the victim, same low bits).  If the entry is
  still valid the frontend predicts through it and prefetches the
  target — which, resolved against the probe region's upper bits, is
  ``T2``'s line.  A timed load of ``T2`` then reads the verdict:
  fast ⇒ entry survived ⇒ victim did *not* execute ``victim_pc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.cpu.isa import Instruction, InstrKind
from repro.kernel import actions as act
from repro.channels.prime_probe import prime_probe_threshold
from repro.uarch.address import line_addr

_4GIB = 1 << 32


@dataclass(frozen=True)
class BtbGadgetLayout:
    """Addresses of one Train+Probe gadget pair (Fig 5.3).

    ``delta`` is the in-region offset of the jump target T1; the probe
    marker T2 lives at the same offset in the probe region so the
    predicted-target prefetch covers its line.
    """

    victim_pc: int
    delta: int = 0x440  # ≈ the figure's 1019 single-byte NOPs + JMP

    @property
    def prime_pc(self) -> int:
        return self.victim_pc + _4GIB

    @property
    def prime_target(self) -> int:
        return self.prime_pc + self.delta  # T1

    @property
    def probe_pc(self) -> int:
        return self.victim_pc + 2 * _4GIB

    @property
    def probe_marker(self) -> int:
        return self.probe_pc + self.delta  # T2 (same low bits as T1)

    @property
    def marker_line(self) -> int:
        return line_addr(self.probe_marker)


class BtbTrainProbe:
    """One Train+Probe gadget bound to one victim instruction."""

    def __init__(self, victim_pc: int, threshold: Optional[float] = None,
                 label: str = ""):
        self.layout = BtbGadgetLayout(victim_pc)
        # Walk-aware threshold: after an AEX the marker page's
        # translation is gone, so even a prefetched (fast) marker load
        # pays a page walk on top of its cache hit.
        self.threshold = (
            threshold if threshold is not None else prime_probe_threshold()
        )
        self.label = label or hex(victim_pc)

    def train(self) -> Iterator[act.Action]:
        """Allocate the colliding BTB entry (btb_prime of Fig 5.3)."""
        layout = self.layout
        yield act.ExecInst(
            Instruction(pc=layout.prime_pc, kind=InstrKind.JMP,
                        target=layout.prime_target)
        )
        return None

    def probe(self) -> Iterator[act.Action]:
        """Fig 5.3's probe: returns True iff the victim *executed* the
        colliding instruction (entry invalidated ⇒ no prefetch ⇒ slow
        marker load)."""
        layout = self.layout
        yield act.Flush(layout.probe_marker)
        yield act.ExecInst(
            Instruction(pc=layout.probe_pc, kind=InstrKind.RET,
                        target=layout.probe_pc + 1)
        )
        latency = yield act.TimedLoad(layout.probe_marker)
        executed = latency > self.threshold
        return executed

    def measure(self) -> Iterator[act.Action]:
        """Probe, then immediately re-train for the next round."""
        executed = yield from self.probe()
        yield from self.train()
        return executed


class DualBtbProbe:
    """Two gadgets covering both directions of a secret branch (§5.3).

    Returns ``(if_executed, else_executed)`` per round; exactly one is
    expected to be True when the victim completed a loop iteration in
    the nap, neither when it made no progress.
    """

    def __init__(self, if_pc: int, else_pc: int):
        self.if_gadget = BtbTrainProbe(if_pc, label="if")
        self.else_gadget = BtbTrainProbe(else_pc, label="else")

    def train_both(self) -> Iterator[act.Action]:
        yield from self.if_gadget.train()
        yield from self.else_gadget.train()
        return None

    def measure(self) -> Iterator[act.Action]:
        if_taken = yield from self.if_gadget.measure()
        else_taken = yield from self.else_gadget.measure()
        return (if_taken, else_taken)
