"""Shared virtual-address layout for victims and attacks.

Victim code/data sit in low memory; the attacker's eviction-set arenas
sit far above so nothing aliases by accident; the BTB gadgets live at
exact 4 GiB multiples above victim text (Fig 5.3's padding); kernel
footprint lines are defined in :mod:`repro.kernel.kernel`.
"""

from __future__ import annotations

#: Victim code (straightline loop, AES routine, base64 loops, GCD).
VICTIM_TEXT_BASE = 0x0040_0000

#: OpenSSL-style T-tables: Te0..Te3 contiguous, 1 KiB (16 lines) each.
TTABLE_BASE = 0x0060_0000

#: base64 decode LUT: 128 bytes spanning exactly two cache lines,
#: line-aligned (as in OpenSSL's data layout per Sieck et al.).
BASE64_LUT_BASE = 0x0061_0000

#: Victim scratch/output buffers.  Offset so the decoder's growing
#: output (a dozen lines) occupies LLC sets ~900+, clear of every
#: monitored set — output stores crossing a probe set would read as
#: false victim activity.
VICTIM_DATA_BASE = 0x0070_E100

#: Attacker arenas (eviction sets, probe buffers).
ATTACKER_ARENA = 0x1_0000_0000 >> 4  # 0x10000000
ATTACKER_TLB_ARENA = 0x2000_0000
ATTACKER_LLC_ARENA = 0x3000_0000

#: The LLC arena is mmap'd with MAP_HUGETLB (2 MiB pages): eviction-set
#: lines are one LLC period apart and would thrash the 4 KiB STLB
#: otherwise, polluting the attacker's own probe timings.
ATTACKER_HUGE_REGION = (0x3000_0000, 0x4000_0000)
