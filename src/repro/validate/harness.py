"""Fuzzing harness: run randomized workloads under invariant oracles.

``run_case`` executes one :class:`~repro.validate.workload.WorkloadSpec`
under one scheduling policy with every oracle armed (the
:class:`~repro.validate.invariants.PolicyProbe` on the policy, the
:class:`~repro.validate.invariants.StepProbe` on the event loop, the
post-hoc trace checks afterwards) and returns a :class:`CaseOutcome`
whose ``digest`` captures the full schedule bit-exactly.

``run_validate`` is the CLI entry point (``python -m repro validate``):
it fans ``--cases`` independent cases out over :mod:`repro.parallel`
(derived seeds, so parallel == serial bit-for-bit), shrinks any failing
case to a minimal reproducer, and emits the reproducer as a replayable
run manifest (``python -m repro replay <file>``).

``--inject-bug`` plants a known scheduler bug (e.g. dropping the Eq 2.2
S_preempt threshold) to demonstrate — and in tests, to *prove* — that
the oracles catch it and the shrinker converges.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cpu.machine import Machine, MachineConfig
from repro.kernel.kernel import Kernel
from repro.kernel.tracing import KernelTracer
from repro.parallel import derive_seed, parallel_map
from repro.sched.cfs import CfsScheduler
from repro.sched.eevdf import EevdfScheduler
from repro.sched.features import SchedFeatures
from repro.sched.params import SchedParams
from repro.sim.rng import RngStreams
from repro.validate.invariants import (
    InvariantMonitor,
    PolicyProbe,
    StepProbe,
    check_migrations,
    check_no_lost_wakeups,
    check_runtime_conservation,
    check_switch_stream,
    check_vruntime_monotonic,
)
from repro.validate.uarch import (
    UarchProbe,
    inject_llc_leak,
    run_fastforward_case,
    run_uarch_case,
)
from repro.validate.workload import WorkloadSpec, build_tasks, generate_workload

#: Scheduler params come from the paper's 16-core testbed, like every
#: experiment in this repo (see repro.experiments.setup).
PARAMS_CORE_COUNT = 16

SCHEDULERS = ("cfs", "eevdf")


# ----------------------------------------------------------------------
# Deliberate bugs (for oracle validation and the --inject-bug demo)
# ----------------------------------------------------------------------
class _CfsSkipSlack(CfsScheduler):
    """Eq 2.2 without the S_preempt threshold: any positive lag preempts."""

    def wants_wakeup_preempt(self, rq, curr, wakee):
        if not self.features.wakeup_preemption:
            return False
        if (self.features.wakeup_min_slice_ns > 0
                and curr.slice_exec < self.features.wakeup_min_slice_ns):
            return False
        return curr.vruntime - wakee.vruntime > 0.0


class _EevdfSkipEligibility(EevdfScheduler):
    """EEVDF wakeup preemption without the eligibility gate."""

    def wants_wakeup_preempt(self, rq, curr, wakee):
        if not self.features.wakeup_preemption:
            return False
        if (self.features.wakeup_min_slice_ns > 0
                and curr.slice_exec < self.features.wakeup_min_slice_ns):
            return False
        if self.features.run_to_parity and curr.vruntime < curr.deadline:
            return False
        return wakee.deadline < curr.deadline


class _MinVruntimeClampBug:
    """update_min_vruntime without the kernel's monotonic clamp."""

    def charge(self, rq, task, exec_ns):
        super().charge(rq, task, exec_ns)
        candidates = [t.vruntime for t in rq.all_tasks()]
        if candidates:
            rq.min_vruntime = min(candidates)


class _CfsMinVruntimeRegress(_MinVruntimeClampBug, CfsScheduler):
    pass


class _EevdfMinVruntimeRegress(_MinVruntimeClampBug, EevdfScheduler):
    pass


class _CfsGreedyPick(CfsScheduler):
    """pick_next chooses the *largest* vruntime (inverted comparator)."""

    def pick_next(self, rq):
        if not rq.queued:
            return None
        return max(rq.queued, key=lambda t: (t.vruntime, t.pid))


class _EevdfGreedyPick(EevdfScheduler):
    """pick_next ignores eligibility (earliest deadline overall)."""

    def pick_next(self, rq):
        if not rq.queued:
            return None
        return min(rq.queued, key=lambda t: (t.deadline, t.vruntime, t.pid))


_BUGGY_POLICIES = {
    ("skip-eq22-slack", "cfs"): _CfsSkipSlack,
    ("skip-eq22-slack", "eevdf"): _EevdfSkipEligibility,
    ("min-vruntime-regress", "cfs"): _CfsMinVruntimeRegress,
    ("min-vruntime-regress", "eevdf"): _EevdfMinVruntimeRegress,
    ("greedy-pick", "cfs"): _CfsGreedyPick,
    ("greedy-pick", "eevdf"): _EevdfGreedyPick,
}

#: Bugs planted below the policy layer (balancer / memory hierarchy),
#: applied to the constructed kernel rather than the policy class.
_KERNEL_BUGS: Tuple[str, ...] = (
    "skip-migration-renorm",  # balancer moves tasks with absolute vruntime
    "inclusive-llc-leak",     # LLC evictions stop back-invalidating
)

#: Public names accepted by ``--inject-bug``.
BUG_NAMES: Tuple[str, ...] = tuple(sorted(
    {k[0] for k in _BUGGY_POLICIES} | set(_KERNEL_BUGS)))


def make_validate_policy(scheduler: str, features: Optional[Dict[str, Any]],
                         bug: Optional[str] = None):
    """Build the (optionally sabotaged) policy for one case run."""
    params = SchedParams.for_cores(PARAMS_CORE_COUNT)
    feats = SchedFeatures(**features) if features else SchedFeatures.default()
    if bug is not None and bug not in _KERNEL_BUGS:
        key = (bug, scheduler)
        if key not in _BUGGY_POLICIES:
            raise ValueError(
                f"unknown bug {bug!r} for {scheduler!r}; known: {BUG_NAMES}")
        return _BUGGY_POLICIES[key](params, feats)
    if scheduler == "cfs":
        return CfsScheduler(params, feats)
    if scheduler == "eevdf":
        return EevdfScheduler(params, feats)
    raise ValueError(f"unknown scheduler {scheduler!r}")


# ----------------------------------------------------------------------
# One case
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaseOutcome:
    """Result of one fuzz case (plain data; repr is the digest input
    for manifest replay, so every field must be deterministic)."""

    seed: int
    scheduler: str
    n_cpus: int
    n_tasks: int
    digest: str
    invariants: Tuple[str, ...]  # names of violated invariants
    violations: Tuple[str, ...]  # rendered Violation strings
    end_time_ns: float
    n_switches: int
    n_wakeups: int
    n_preempt_grants: int
    n_migrations: int
    per_task_runtime: Tuple[Tuple[int, float], ...]

    @property
    def ok(self) -> bool:
        return not self.invariants


#: Sample the (state-proportional) uarch structural probe once per this
#: many event-loop steps, plus once at quiescence.
_UARCH_SAMPLE_EVERY = 32


def run_case(spec: WorkloadSpec, scheduler: str, *,
             bug: Optional[str] = None) -> CaseOutcome:
    """Run one workload under every oracle; return the outcome."""
    if bug is not None and bug not in BUG_NAMES:
        raise ValueError(f"unknown bug {bug!r}; known: {BUG_NAMES}")
    monitor = InvariantMonitor()
    policy = make_validate_policy(scheduler, spec.features, bug)
    probe = PolicyProbe(policy, monitor)
    machine = Machine(MachineConfig(n_cores=spec.n_cpus))
    rng = RngStreams(seed=spec.seed)
    tracer = KernelTracer(sample_vruntime=True)
    kernel = Kernel(machine, probe, rng, tracer=tracer)
    probe.clock = lambda: kernel.sim.now
    if bug == "skip-migration-renorm":
        # The pre-fix balancer: detach/attach with absolute vruntime.
        kernel.balancer.policy = None
    elif bug == "inclusive-llc-leak":
        inject_llc_leak(machine.hierarchy)
    tasks = []
    for task, tspec in build_tasks(spec):
        cpu = None
        if tspec.pinned_cpu is not None:
            cpu = min(tspec.pinned_cpu, spec.n_cpus - 1)

        def do_spawn(task=task, tspec=tspec, cpu=cpu):
            kernel.spawn(
                task, cpu=cpu,
                wake_placement=tspec.wake_placement,
                sleep_vruntime=(tspec.sleep_vruntime
                                if tspec.wake_placement else None),
            )

        if tspec.spawn_at_ns > 0:
            kernel.sim.call_at(tspec.spawn_at_ns, do_spawn, label="spawn")
        else:
            do_spawn()
        tasks.append(task)
    step_probe = StepProbe(kernel, monitor)
    uarch_probe = UarchProbe(machine, monitor)
    steps = 0

    def predicate() -> bool:
        nonlocal steps
        steps += 1
        if steps % _UARCH_SAMPLE_EVERY == 0:
            uarch_probe.check(kernel.now)
        return step_probe()

    kernel.run_until(predicate=predicate, max_time=spec.horizon_ns)
    step_probe()  # sample once more: the final event isn't followed by a step
    uarch_probe.check(kernel.now)
    heap_drained = kernel.sim.peek_next_time() is None
    end_time = kernel.now

    violations = list(monitor.violations)
    violations += check_vruntime_monotonic(tracer)
    violations += check_switch_stream(tracer)
    violations += check_no_lost_wakeups(tracer, tasks, heap_drained)
    accounted = {c: st.accounted_until for c, st in enumerate(kernel.cpus)}
    violations += check_runtime_conservation(monitor, tasks, accounted,
                                             end_time)
    violations += check_migrations(kernel.balancer.migrations, tracer,
                                   tasks, scheduler)

    grants = sum(1 for w in tracer.wakeups if w.preempted)
    return CaseOutcome(
        seed=spec.seed,
        scheduler=scheduler,
        n_cpus=spec.n_cpus,
        n_tasks=len(spec.tasks),
        digest=_trace_digest(tracer, tasks),
        invariants=tuple(sorted({v.invariant for v in violations})),
        violations=tuple(str(v) for v in violations),
        end_time_ns=end_time,
        n_switches=len(tracer.switches),
        n_wakeups=len(tracer.wakeups),
        n_preempt_grants=grants,
        n_migrations=len(kernel.balancer.migrations),
        per_task_runtime=tuple(
            (t.pid, t.sum_exec_runtime) for t in tasks),
    )


def _trace_digest(tracer: KernelTracer, tasks) -> str:
    """Bit-exact digest of the schedule: every switch, wakeup and
    migration record plus each task's final accounting state."""
    h = hashlib.sha256()
    for rec in tracer.switches:
        h.update(repr(rec).encode())
    for rec in tracer.wakeups:
        h.update(repr(rec).encode())
    for rec in tracer.migrations:
        h.update(repr(rec).encode())
    for task in tasks:
        h.update(
            f"{task.pid}|{task.vruntime!r}|{task.sum_exec_runtime!r}|"
            f"{task.state.value}|{task.wakeups}|{task.migrations}".encode()
        )
    return h.hexdigest()


def replay_case(case: Dict[str, Any], scheduler: str,
                bug: Optional[str] = None) -> CaseOutcome:
    """Manifest-replay entry point: re-run an emitted reproducer.

    ``case`` is a :meth:`WorkloadSpec.to_dict` dictionary, exactly as a
    shrunken reproducer manifest records it.
    """
    return run_case(WorkloadSpec.from_dict(case), scheduler, bug=bug)


# ----------------------------------------------------------------------
# The fuzz campaign
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FailureSummary:
    scheduler: str
    case_seed: int
    invariants: Tuple[str, ...]
    shrunk_tasks: int
    #: Excluded from repr so the report digest is location-independent.
    reproducer_path: Optional[str] = field(default=None, repr=False,
                                           compare=False)
    #: ``--differential`` divergence lines for this failing seed.
    differential: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ValidateReport:
    """Aggregate result of one ``repro validate`` campaign."""

    cases: int
    schedulers: Tuple[str, ...]
    cpus: int
    seed: int
    bug: Optional[str]
    digest: str
    n_switches: int
    n_wakeups: int
    n_preempt_grants: int
    failures: Tuple[FailureSummary, ...]
    n_migrations: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz_case(case_index: int, root_seed: int, cpus: int,
                  scheduler: str, bug: Optional[str] = None,
                  max_tasks: int = 6,
                  profile: str = "mixed") -> CaseOutcome:
    """One campaign cell (module-level so the pool can pickle it)."""
    case_seed = derive_seed(root_seed, "validate", scheduler, case_index)
    spec = generate_workload(case_seed, n_cpus=cpus, max_tasks=max_tasks,
                             profile=profile)
    return run_case(spec, scheduler, bug=bug)


def _fuzz_cell(cell: Dict[str, Any]) -> CaseOutcome:
    return run_fuzz_case(**cell)


def run_validate(
    cases: int = 100,
    seed: int = 0,
    cpus: int = 2,
    scheduler: str = "both",
    bug: Optional[str] = None,
    *,
    jobs: Optional[int] = None,
    shrink: bool = True,
    out_dir: Optional[str] = None,
    max_tasks: int = 6,
    profile: str = "mixed",
    differential: bool = False,
    uarch_cases: int = 0,
    ff_cases: int = 0,
) -> ValidateReport:
    """Fuzz ``cases`` random workloads per scheduler under all oracles.

    Results are bit-identical for any ``jobs`` (each case derives its
    seed from ``(seed, scheduler, index)``, never from pool order).  On
    a violation the workload is shrunk to a minimal reproducer; with
    ``out_dir`` set, the reproducer is written as a replayable manifest.

    ``profile`` selects the workload family (see
    :func:`~repro.validate.workload.generate_workload`).
    ``differential=True`` additionally re-runs every failing seed across
    the CFS/EEVDF feature grid and attaches the divergence summary to
    its :class:`FailureSummary`.  ``uarch_cases`` appends that many
    scripted cache/TLB differential cases (machine vs brute-force
    reference) to the campaign; ``ff_cases`` appends that many
    fast-forward certification cases (arithmetic fast paths vs the
    per-instruction interpreter on scheduled preemption windows).
    """
    from repro.validate.shrink import emit_reproducer, shrink_workload

    if scheduler == "both":
        schedulers: Tuple[str, ...] = SCHEDULERS
    elif scheduler in SCHEDULERS:
        schedulers = (scheduler,)
    else:
        raise ValueError(f"unknown scheduler {scheduler!r}")
    cells = [
        dict(case_index=i, root_seed=seed, cpus=cpus, scheduler=s,
             bug=bug, max_tasks=max_tasks, profile=profile)
        for s in schedulers for i in range(cases)
    ]
    outcomes = parallel_map(_fuzz_cell, cells, jobs=jobs)

    digest = hashlib.sha256()
    for outcome in outcomes:
        digest.update(outcome.digest.encode())
    failures: List[FailureSummary] = []
    for outcome in outcomes:
        if outcome.ok:
            continue
        spec = generate_workload(outcome.seed, n_cpus=outcome.n_cpus,
                                 max_tasks=max_tasks, profile=profile)
        target = set(outcome.invariants)
        diff_lines: Tuple[str, ...] = ()
        if differential:
            from repro.validate.differential import run_differential

            diff_report = run_differential(spec=spec, bug=bug)
            diff_lines = diff_report.divergence + tuple(
                f"{r.scheduler}/{r.variant}: "
                f"{','.join(r.outcome.invariants) or 'ok'}"
                for r in diff_report.results if not r.outcome.ok)
        if shrink:
            def still_fails(candidate: WorkloadSpec) -> bool:
                result = run_case(candidate, outcome.scheduler, bug=bug)
                return bool(target & set(result.invariants))

            spec = shrink_workload(spec, still_fails)
        path = None
        if out_dir is not None:
            path = emit_reproducer(spec, outcome.scheduler, bug, out_dir)
        failures.append(FailureSummary(
            scheduler=outcome.scheduler,
            case_seed=outcome.seed,
            invariants=outcome.invariants,
            shrunk_tasks=len(spec.tasks),
            reproducer_path=path,
            differential=diff_lines,
        ))
    for i in range(uarch_cases):
        uarch_seed = derive_seed(seed, "validate-uarch", i)
        uarch_violations = run_uarch_case(uarch_seed)
        digest.update(f"uarch:{uarch_seed}:"
                      f"{len(uarch_violations)}".encode())
        if uarch_violations:
            failures.append(FailureSummary(
                scheduler="uarch",
                case_seed=uarch_seed,
                invariants=tuple(sorted(
                    {v.invariant for v in uarch_violations})),
                shrunk_tasks=0,
            ))
    for i in range(ff_cases):
        ff_seed = derive_seed(seed, "validate-ff", i)
        ff_violations = run_fastforward_case(ff_seed)
        digest.update(f"ff:{ff_seed}:{len(ff_violations)}".encode())
        if ff_violations:
            failures.append(FailureSummary(
                scheduler="fast-forward",
                case_seed=ff_seed,
                invariants=tuple(sorted(
                    {v.invariant for v in ff_violations})),
                shrunk_tasks=0,
            ))
    return ValidateReport(
        cases=cases,
        schedulers=schedulers,
        cpus=cpus,
        seed=seed,
        bug=bug,
        digest=digest.hexdigest(),
        n_switches=sum(o.n_switches for o in outcomes),
        n_wakeups=sum(o.n_wakeups for o in outcomes),
        n_preempt_grants=sum(o.n_preempt_grants for o in outcomes),
        failures=tuple(failures),
        n_migrations=sum(o.n_migrations for o in outcomes),
    )
