"""Experiment scaling knob and microarchitectural statistics."""

from repro.cpu.isa import load, nop
from repro.cpu.machine import Machine, MachineConfig
from repro.experiments.setup import scale_factor, scaled


class TestReproScale(object):
    def test_env_var_controls_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scale_factor() == 0.5
        assert scaled(1000, minimum=1) == 500

    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled(80_000, minimum=20) == 4000

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert scaled(1000, minimum=50) == 50

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1")
        assert scaled(80_000) == 80_000


class TestStats:
    def test_core_counts_retirements_and_loads(self):
        machine = Machine(MachineConfig(n_cores=1))
        core = machine.core(0)
        core.execute(1, nop(0x400000))
        core.execute(1, load(0x400004, 0x600000))
        assert core.stats.instructions_retired == 2
        assert core.stats.loads == 1
        assert core.stats.stores == 0

    def test_cache_hit_miss_counters(self):
        machine = Machine(MachineConfig(n_cores=1))
        hierarchy = machine.hierarchy
        hierarchy.access(0, 0x1000)
        hierarchy.access(0, 0x1000)
        assert hierarchy.l1d[0].misses == 1
        assert hierarchy.l1d[0].hits == 1

    def test_tlb_counters(self):
        machine = Machine(MachineConfig(n_cores=1))
        tlbs = machine.tlbs
        tlbs.translate_fetch(0, 1, 0x400000)
        tlbs.translate_fetch(0, 1, 0x400000)
        assert tlbs.itlb[0].misses == 1
        assert tlbs.itlb[0].hits == 1

    def test_btb_counters(self):
        machine = Machine(MachineConfig(n_cores=1))
        btb = machine.btbs[0]
        btb.on_control_transfer(0x100, 0x200)
        btb.on_plain_instruction(0x100)
        assert btb.allocations == 1
        assert btb.invalidations == 1

    def test_speculative_issue_counter(self):
        from repro.cpu.program import TraceProgram

        machine = Machine(MachineConfig(n_cores=1))
        core = machine.core(0)
        program = TraceProgram([nop(0x400000), load(0x400004, 0x600000)])
        program.retire()
        core.speculate(1, program, window=2)
        assert core.stats.speculative_issues == 1
