"""repro.validate — randomized scheduler-invariant fuzzing.

The trustworthiness of every figure in this reproduction rests on the
simulated CFS/EEVDF kernels behaving like the real ones.  This package
checks them against machine-readable invariants under *randomized*
workloads rather than curated experiment configs:

* :mod:`repro.validate.workload` — seeded random task-mix generator;
* :mod:`repro.validate.invariants` — online and post-hoc oracles
  (Eq 2.1/2.2 reference reimplementations, vruntime/min_vruntime
  monotonicity, EEVDF eligibility, work conservation, lost wakeups,
  runtime conservation);
* :mod:`repro.validate.harness` — case runner + the ``repro validate``
  fuzz campaign (pool-parallel, bit-deterministic);
* :mod:`repro.validate.differential` — same workload across CFS/EEVDF
  and feature-flag variants;
* :mod:`repro.validate.shrink` — greedy minimization of failing cases
  into replayable run manifests.

See docs/VALIDATION.md for the invariant catalogue and usage.
"""

from repro.validate.harness import (  # noqa: F401
    BUG_NAMES,
    CaseOutcome,
    ValidateReport,
    replay_case,
    run_case,
    run_validate,
)
from repro.validate.invariants import InvariantMonitor, Violation  # noqa: F401
from repro.validate.shrink import shrink_workload  # noqa: F401
from repro.validate.workload import (  # noqa: F401
    TaskSpec,
    WorkloadSpec,
    generate_workload,
)
