"""Event-heap simulator core.

The simulator keeps a binary heap of ``(time, priority, seq, event)``
tuples.  ``seq`` is a monotonically increasing integer, so events
scheduled at the same instant run in scheduling order, which makes the
whole simulation deterministic.  Ordering lives in the tuple — never in
:class:`Event` itself — so a heap sift compares machine ints and floats
instead of calling back into Python attribute lookups; this is the
single hottest comparison in the whole simulation.

Time is a ``float`` number of nanoseconds since simulation start.  All
kernel and scheduler quantities in this project are expressed in
nanoseconds; microarchitectural quantities are expressed in cycles and
converted through :data:`repro.uarch.timing.CPU_FREQ_GHZ`.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Events run in ``(time, priority, seq)`` order.  Lower priority
    values run first among events at the same timestamp; the default
    priority of 0 is fine for nearly everything.  Interrupt delivery
    uses a negative priority so that a timer firing at exactly the
    instant a task would block is handled interrupt-first, as on real
    hardware.
    """

    __slots__ = ("time", "priority", "seq", "callback", "cancelled", "label", "fired")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        cancelled: bool = False,
        label: str = "",
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self.fired = False


class EventHandle:
    """Opaque handle allowing a scheduled event to be cancelled."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.fired:
                self._sim._live -= 1


_HeapEntry = Tuple[float, int, int, Event]


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_at(10.0, lambda: fired.append(sim.now))
    >>> _ = sim.call_after(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0, 10.0]
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: List[_HeapEntry] = []
        self._seq = 0
        self._live = 0  # non-cancelled, not-yet-fired events in the heap
        self._running = False
        #: Events executed so far — the engine-throughput numerator for
        #: the obs layer (events/s over wall time).  One integer add per
        #: event; everything else obs needs is pulled from existing
        #: state at snapshot time.
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute time ``time``.

        Scheduling in the past is an error: it would silently reorder
        history and mask bugs in the caller.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule event at {time} ns; simulation time is "
                f"already {self._now} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, label=label)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def call_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, priority=priority, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            event.fired = True
            self._live -= 1
            self.events_fired += 1
            self._now = event.time
            event.callback()
            return True
        return False

    def run(self, *, max_events: Optional[int] = None) -> int:
        """Run until the event heap drains.  Returns events executed."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: float, *, max_events: Optional[int] = None) -> int:
        """Run events with timestamps <= ``time``; advance clock to ``time``.

        Events scheduled exactly at ``time`` do run.  After the call the
        clock reads ``time`` even if the heap drained earlier, so
        callers can interleave event-driven and computed phases.
        """
        count = 0
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > time:
                break
            self.step()
            count += 1
            if max_events is not None and count >= max_events:
                return count
        if time > self._now:
            self._now = time
        return count

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a live counter maintained on push/cancel/pop replaces the
        full-heap scan this used to be.
        """
        return self._live

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
