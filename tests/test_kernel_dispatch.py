"""Integration tests for the kernel dispatch loop, timers and syscalls."""

import pytest

from repro.cpu.machine import Machine, MachineConfig
from repro.cpu.program import StraightlineProgram
from repro.experiments.setup import build_env
from repro.kernel import actions as act
from repro.kernel.threads import ComputeBody, CoroutineBody, ProgramBody
from repro.sched.task import Task, TaskState
from repro.victims.sgx import make_enclave_task

MS = 1_000_000


def coroutine_task(name, gen):
    return Task(name, body=CoroutineBody(gen))


class TestBasicScheduling:
    def test_single_task_runs_and_exits(self):
        env = build_env(seed=0)
        done = []

        def body():
            yield act.Compute(1000.0)
            now = yield act.GetTime()  # body-local clock, not sim.now
            done.append(now)
            yield act.Exit()

        task = coroutine_task("t", body())
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(max_time=1e9)
        assert task.state is TaskState.EXITED
        assert done and done[0] >= 1000.0

    def test_program_victim_runs_to_completion(self):
        env = build_env(seed=0)
        program = StraightlineProgram(total=5000)
        victim = Task("v", body=ProgramBody(program))
        env.kernel.spawn(victim, cpu=0)
        env.kernel.run_until(
            predicate=lambda: victim.state is TaskState.EXITED, max_time=1e9
        )
        assert program.retired == 5000

    def test_two_compute_tasks_share_fairly(self):
        env = build_env(seed=0)
        a = Task("a", body=ComputeBody())
        b = Task("b", body=ComputeBody())
        env.kernel.spawn(a, cpu=0)
        env.kernel.spawn(b, cpu=0)
        env.kernel.run_until(max_time=100 * MS)
        total = a.sum_exec_runtime + b.sum_exec_runtime
        assert total > 90 * MS
        assert abs(a.sum_exec_runtime - b.sum_exec_runtime) / total < 0.10

    def test_tick_descheduling_respects_min_granularity(self):
        env = build_env(seed=0)
        a = Task("a", body=ComputeBody())
        b = Task("b", body=ComputeBody())
        env.kernel.spawn(a, cpu=0)
        env.kernel.spawn(b, cpu=0)
        env.kernel.run_until(max_time=30 * MS)
        switches = [
            s for s in env.tracer.switches if s.reason == "tick" and s.next_pid
        ]
        assert switches, "tick preemption should have occurred"
        # Consecutive tick switches are at least S_min apart.
        for first, second in zip(switches, switches[1:]):
            assert second.time - first.time >= env.params.s_min - env.params.tick


class TestNanosleep:
    def test_sleep_duration_respected(self):
        env = build_env(seed=0)
        wakes = []

        def body():
            yield act.SetTimerSlack(1.0)
            start = yield act.GetTime()
            yield act.Nanosleep(5 * MS)
            end = yield act.GetTime()
            wakes.append(end - start)
            yield act.Exit()

        env.kernel.spawn(coroutine_task("s", body()), cpu=0)
        env.kernel.run_until(max_time=1e9)
        assert len(wakes) == 1
        assert 5 * MS <= wakes[0] <= 5 * MS + 50_000

    def test_default_timer_slack_delays_wakeup(self):
        env = build_env(seed=0)
        wakes = []

        def body(set_slack):
            if set_slack:
                yield act.SetTimerSlack(1.0)
            start = yield act.GetTime()
            yield act.Nanosleep(1 * MS)
            end = yield act.GetTime()
            wakes.append(end - start)
            yield act.Exit()

        env.kernel.spawn(coroutine_task("default", body(False)), cpu=0)
        env.kernel.run_until(max_time=1e9)
        env2 = build_env(seed=0)
        env2.kernel.spawn(coroutine_task("tight", body(True)), cpu=0)
        env2.kernel.run_until(max_time=1e9)
        default_slack, tight = wakes
        # Identical jitter streams: the only difference is the slack.
        assert default_slack > tight

    def test_sleeping_task_yields_cpu(self):
        env = build_env(seed=0)
        other = Task("other", body=ComputeBody())

        def body():
            yield act.Nanosleep(10 * MS)
            yield act.Exit()

        env.kernel.spawn(coroutine_task("sleeper", body()), cpu=0)
        env.kernel.spawn(other, cpu=0)
        env.kernel.run_until(max_time=10 * MS)
        assert other.sum_exec_runtime > 9 * MS


class TestPosixTimer:
    def test_periodic_timer_wakes_pause(self):
        env = build_env(seed=0)
        wake_times = []

        def body():
            yield act.TimerCreate(2 * MS)
            for _ in range(3):
                yield act.Pause()
                now = yield act.GetTime()
                wake_times.append(now)
            yield act.TimerCancel()
            yield act.Exit()

        task = coroutine_task("m2", body())
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(max_time=1e9)
        assert task.state is TaskState.EXITED
        assert len(wake_times) == 3
        gaps = [b - a for a, b in zip(wake_times, wake_times[1:])]
        for gap in gaps:
            assert gap == pytest.approx(2 * MS, rel=0.05)

    def test_timer_overrun_counted_not_queued(self):
        env = build_env(seed=0)
        wakes = []

        def body():
            yield act.TimerCreate(1 * MS)
            yield act.Pause()
            # Handler takes 3 periods: the expiries in between are
            # overruns, not queued wakeups.
            yield act.Compute(3 * MS)
            yield act.Pause()
            now = yield act.GetTime()
            wakes.append(now)
            yield act.TimerCancel()
            yield act.Exit()

        task = coroutine_task("overrun", body())
        env.kernel.spawn(task, cpu=0)
        env.kernel.run_until(max_time=1e9)
        assert task.state is TaskState.EXITED
        assert len(wakes) == 1


class TestWakeupPreemption:
    def test_well_slept_wakeup_preempts_running_victim(self):
        env = build_env(seed=0)
        victim = Task("v", body=ComputeBody())

        def attacker_body():
            yield act.SetTimerSlack(1.0)
            yield act.Nanosleep(5e9)
            yield act.Compute(1000.0)
            yield act.Exit()

        attacker = coroutine_task("a", attacker_body())
        env.kernel.spawn(victim, cpu=0)
        env.kernel.spawn(attacker, cpu=0)
        env.kernel.run_until(
            predicate=lambda: attacker.state is TaskState.EXITED,
            max_time=6e9,
        )
        preempts = env.tracer.preemption_switches(attacker.pid)
        assert len(preempts) == 1
        assert victim.preemptions_suffered == 1

    def test_failed_preemption_records_exit_to_victim(self):
        env = build_env(seed=0)
        victim = Task("v", body=ComputeBody())

        def napper_body():
            # Immediately napping gives no sleeper credit: vruntime gap
            # stays below S_preempt, so the wake cannot preempt.
            yield act.Compute(100.0)
            yield act.Nanosleep(1000.0)
            yield act.Exit()

        napper = coroutine_task("n", napper_body())
        env.kernel.spawn(victim, cpu=0)
        env.kernel.spawn(napper, cpu=0)
        env.kernel.run_until(max_time=20 * MS)
        failed = [w for w in env.tracer.wakeups if w.pid == napper.pid
                  and not w.preempted]
        assert failed


class TestEnclaveTransitions:
    def test_aex_flushes_tlb(self):
        env = build_env(seed=0)
        program = StraightlineProgram()  # endless: outlives the hibernation
        victim = make_enclave_task("enclave", program)

        def attacker_body():
            yield act.SetTimerSlack(1.0)
            yield act.Nanosleep(5e9)
            yield act.Compute(1000.0)
            yield act.Exit()

        attacker = coroutine_task("a", attacker_body())
        env.kernel.spawn(victim, cpu=0)
        env.kernel.spawn(attacker, cpu=0)
        # Stop exactly when the AEX lands (the victim would re-fill the
        # TLB as soon as it resumes).
        env.kernel.run_until(
            predicate=lambda: bool(
                env.tracer.preemption_switches(attacker.pid)
            ),
            max_time=6e9,
        )
        assert victim.preemptions_suffered >= 1
        assert not env.machine.tlbs.holds_fetch_translation(
            0, victim.pid, program.base_pc
        )

    def test_enclave_resume_costs_more(self):
        def preemption_gap(enclave):
            env = build_env(seed=0)
            program = StraightlineProgram()  # endless
            if enclave:
                victim = make_enclave_task("v", program)
            else:
                victim = Task("v", body=ProgramBody(program))

            def attacker_body():
                yield act.SetTimerSlack(1.0)
                yield act.Nanosleep(5e9)
                for _ in range(3):
                    yield act.Compute(1000.0)
                    yield act.Nanosleep(10_000.0)
                yield act.Exit()

            attacker = coroutine_task("a", attacker_body())
            env.kernel.spawn(victim, cpu=0)
            env.kernel.spawn(attacker, cpu=0)
            env.kernel.run_until(
                predicate=lambda: attacker.state is TaskState.EXITED,
                max_time=6e9,
            )
            exits = env.tracer.exits_for(victim.pid)
            return program.retired, exits

        plain_retired, _ = preemption_gap(False)
        enclave_retired, _ = preemption_gap(True)
        # Same nap interval: the enclave victim retires less because
        # AEX + ERESUME eat into each window.
        assert enclave_retired < plain_retired


class TestMultiCore:
    def test_unpinned_spawn_picks_idle_cpu(self):
        env = build_env(n_cores=4, seed=0)
        busy = Task("busy", body=ComputeBody())
        busy.pin_to(0)
        env.kernel.spawn(busy, cpu=0)
        env.kernel.run_until(max_time=1 * MS)
        fresh = Task("fresh", body=ComputeBody())
        env.kernel.spawn(fresh)
        assert fresh.cpu != 0

    def test_load_balancer_spreads_waiting_tasks(self):
        env = build_env(n_cores=2, seed=0)
        tasks = [Task(f"t{i}", body=ComputeBody()) for i in range(2)]
        for t in tasks:
            env.kernel.spawn(t, cpu=0)  # both forced onto cpu0
        env.kernel.run_until(max_time=20 * MS)
        assert {t.cpu for t in tasks} == {0, 1}

    def test_pinned_task_never_migrates(self):
        env = build_env(n_cores=2, seed=0)
        pinned = Task("p", body=ComputeBody())
        pinned.pin_to(0)
        env.kernel.spawn(pinned, cpu=0)
        env.kernel.spawn(Task("other", body=ComputeBody()), cpu=0)
        env.kernel.run_until(max_time=20 * MS)
        assert pinned.cpu == 0
        assert pinned.migrations == 0

    def test_spawn_rejects_disallowed_cpu(self):
        env = build_env(n_cores=2, seed=0)
        t = Task("t", body=ComputeBody())
        t.pin_to(1)
        with pytest.raises(ValueError):
            env.kernel.spawn(t, cpu=0)
