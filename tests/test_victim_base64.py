"""Base64 decoder correctness and trace structure."""

import base64

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.isa import InstrKind
from repro.victims.base64_lut import (
    GROUP_CHARS,
    LUT,
    build_decode_program,
    decode,
    ground_truth_lines,
    lut_addr,
    lut_line_addrs,
    lut_line_of,
)


class TestDecodeCorrectness:
    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100)
    def test_roundtrip_against_stdlib(self, data):
        encoded = base64.b64encode(data).decode()
        assert decode(encoded) == data

    def test_newlines_skipped(self):
        encoded = base64.b64encode(b"hello world!").decode()
        wrapped = encoded[:8] + "\n" + encoded[8:] + "\r\n"
        assert decode(wrapped) == b"hello world!"

    def test_invalid_character_rejected(self):
        with pytest.raises(ValueError):
            decode("QUJ$")

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            decode("QUJ")

    def test_data_after_padding_rejected(self):
        with pytest.raises(ValueError):
            decode("QQ==QQ==")


class TestLut:
    def test_two_cache_lines(self):
        lines = lut_line_addrs()
        assert len(lines) == 2
        assert lines[1] - lines[0] == 64

    def test_line_split_at_ascii_64(self):
        assert lut_line_of("A") == 1  # ord 65
        assert lut_line_of("z") == 1
        assert lut_line_of("0") == 0  # ord 48
        assert lut_line_of("+") == 0
        assert lut_line_of("/") == 0
        assert lut_line_of("=") == 0

    def test_lut_values(self):
        assert LUT[ord("A")] == 0
        assert LUT[ord("/")] == 63
        assert LUT[ord("$")] == 0xFF

    def test_ground_truth_lines(self):
        assert ground_truth_lines("A0") == [1, 0]

    def test_lut_addr_within_lines(self):
        for char in "Az09+/":
            addr = lut_addr(char)
            assert addr in range(lut_line_addrs()[0], lut_line_addrs()[0] + 128)


class TestProgramLowering:
    TEXT = base64.b64encode(bytes(range(96))).decode()  # 128 chars

    def test_validity_loads_one_per_char(self):
        info = build_decode_program(self.TEXT)
        validity = [
            i for i in info.program.instructions
            if i.label.startswith("validity")
        ]
        assert len(validity) == len(self.TEXT)
        for index, inst in enumerate(validity):
            assert inst.label == f"validity:{index}"
            assert inst.mem_addr == lut_addr(self.TEXT[index])

    def test_validity_loads_at_fixed_pc(self):
        info = build_decode_program(self.TEXT)
        validity_pcs = {
            i.pc
            for i in info.program.instructions
            if i.label.startswith("validity")
        }
        assert validity_pcs == {info.validity_load_pc}

    def test_decode_loads_cover_all_chars(self):
        info = build_decode_program(self.TEXT)
        decode_labels = [
            int(i.label.split(":")[1])
            for i in info.program.instructions
            if i.label.startswith("decode")
        ]
        assert decode_labels == list(range(len(self.TEXT)))

    def test_group_structure(self):
        """Validity loop of group k precedes decode loop of group k."""
        info = build_decode_program(self.TEXT)
        phases = []
        for inst in info.program.instructions:
            if inst.label.startswith("validity"):
                phases.append(("v", int(inst.label.split(":")[1])))
            elif inst.label.startswith("decode"):
                phases.append(("d", int(inst.label.split(":")[1])))
        # First group: validity 0..63 then decode 0..63.
        v_first = [i for kind, i in phases if kind == "v"][:GROUP_CHARS]
        assert v_first == list(range(GROUP_CHARS))
        first_decode_pos = next(
            k for k, (kind, _) in enumerate(phases) if kind == "d"
        )
        assert all(kind == "v" for kind, _ in phases[:first_decode_pos])

    def test_lvi_flag_controls_fences(self):
        fenced = build_decode_program(self.TEXT, lvi_mitigated=True)
        plain = build_decode_program(self.TEXT, lvi_mitigated=False)
        assert all(
            i.fenced for i in fenced.program.instructions
            if i.kind is InstrKind.LOAD
        )
        assert not any(
            i.fenced for i in plain.program.instructions
            if i.kind is InstrKind.LOAD
        )

    def test_ground_truth_recorded(self):
        info = build_decode_program(self.TEXT)
        assert info.ground_truth == ground_truth_lines(self.TEXT)
        assert info.char_count == len(self.TEXT)

    def test_loops_on_distinct_lines(self):
        from repro.victims.base64_lut import DECODE_LOOP_PC, VALIDITY_LOOP_PC

        assert VALIDITY_LOOP_PC // 64 != DECODE_LOOP_PC // 64
