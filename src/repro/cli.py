"""Command-line interface: ``python -m repro <command>``.

Gives downstream users one-line access to the paper's experiments
without writing harness code:

    python -m repro resolution --tau 740 --degrade
    python -m repro sweep --taus 440,740,1040 --jobs 4
    python -m repro budget --extra 12000 --scheduler eevdf
    python -m repro aes --keys 5 --jobs 4
    python -m repro sgx
    python -m repro btb --pairs 5
    python -m repro colocation --trials 20
    python -m repro mitigations
    python -m repro trace resolution --out trace.json
    python -m repro stats resolution
    python -m repro replay runs/run-resolution-s0-xxxxxxxxxx.json
    python -m repro serve --port 7341 &
    python -m repro submit resolution --port 7341 \\
        --grid tau=700,740,780 --param preemptions=200

``repro serve`` turns the same experiment registry into an async
service: batches of cells are deduped by their content-addressed
manifest key against the cell cache *and* against work already in
flight, so overlapping grids submitted by many clients simulate each
unique cell once (docs/SERVICE.md).

``--jobs N`` fans independent trials out over a process pool; ``--jobs
0`` means "all cores" (``os.cpu_count()``).  Results are bit-identical
to a serial run regardless of N — every trial derives its seed from the
root ``--seed`` and a stable identity, never from execution order.

Observability (see docs/OBSERVABILITY.md):

* every experiment run writes a JSON **run manifest** under
  ``--manifest-dir`` (default ``runs/``; suppress with ``--no-manifest``)
  from which ``repro replay`` re-executes it bit-identically;
* ``--metrics`` prints a metrics table after the run; ``--trace FILE``
  records a Perfetto-loadable Chrome trace of the schedule;
* ``--progress`` shows live per-cell progress for parallel sweeps;
* repeated cells are served from a content-addressed result cache under
  ``<manifest-dir>/cellcache`` (every experiment is a pure function of
  its recorded params, so a key hit is bit-identical to a recompute);
  ``--no-cell-cache`` forces recomputation, ``--cell-cache-dir DIR``
  relocates the store, and ``repro replay`` always bypasses it.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
from typing import List, Optional


# ----------------------------------------------------------------------
# Argument validation
# ----------------------------------------------------------------------
def _jobs_type(value: str) -> int:
    """``--jobs``: a non-negative integer (0 = all cores)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer worker count, got {value!r}"
        )
    if jobs < 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be >= 0 (0 = all cores), got {jobs}"
        )
    return jobs


def _tau_list(value: str) -> List[float]:
    """``--taus``: comma-separated positive finite ns values."""
    taus: List[float] = []
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            raise argparse.ArgumentTypeError(
                f"empty entry in τ list {value!r} (expected e.g. 440,740,1040)"
            )
        try:
            tau = float(entry)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"τ entry {entry!r} is not a number"
            )
        if not math.isfinite(tau) or tau <= 0:
            raise argparse.ArgumentTypeError(
                f"τ entry {entry!r} must be a positive finite ns value"
            )
        taus.append(tau)
    return taus


# ----------------------------------------------------------------------
# Manifest-recorded execution
# ----------------------------------------------------------------------
def _run(args: argparse.Namespace, experiment: str, params: dict,
         extra_kwargs: Optional[dict] = None):
    """Run a registry experiment through the manifest recorder.

    The manifest lands in ``--manifest-dir`` (stderr notes the path so
    stdout stays parseable); ``--no-manifest`` skips the write but still
    runs through the same code path.
    """
    from repro.obs.manifest import run_recorded

    out_dir = None if args.no_manifest else args.manifest_dir
    result, _manifest, path = run_recorded(
        experiment, params, out_dir=out_dir, extra_kwargs=extra_kwargs
    )
    if path:
        print(f"[manifest] {path}", file=sys.stderr)
    return result


def _cmd_resolution(args: argparse.Namespace) -> None:
    from repro.analysis.histogram import ascii_histogram

    run = _run(args, "resolution", dict(
        tau=args.tau,
        degrade_itlb=args.degrade,
        scheduler=args.scheduler,
        preemptions=args.preemptions,
        seed=args.seed,
    ))
    print(f"τ = {args.tau:.0f} ns on {args.scheduler}"
          + (" + iTLB eviction" if args.degrade else ""))
    print(ascii_histogram(run.samples))
    print(run.stats.describe())


def _cmd_sweep(args: argparse.Namespace) -> None:
    runs = _run(args, "sweep", dict(
        taus=args.taus,
        degrade_itlb=args.degrade,
        scheduler=args.scheduler,
        preemptions=args.preemptions,
        seed=args.seed,
    ), extra_kwargs=dict(jobs=args.jobs))
    print(f"τ sweep on {args.scheduler}"
          + (" + iTLB eviction" if args.degrade else "")
          + f" ({len(args.taus)} cells, jobs={args.jobs}):")
    for run in runs:
        print(f"τ={run.tau:7.0f} ns  {run.stats.describe()}")


def _cmd_budget(args: argparse.Namespace) -> None:
    run = _run(args, "budget", dict(
        extra_compute_ns=args.extra,
        scheduler=args.scheduler,
        victim_nice=args.nice,
        seed=args.seed,
    ))
    print(f"I_attacker − I_victim ≈ {run.drift_ns / 1000:.1f} µs "
          f"(victim nice {args.nice}, {args.scheduler})")
    print(f"consecutive preemptions: {run.preemptions} "
          f"(model: {run.expected:.0f})")


def _cmd_aes(args: argparse.Namespace) -> None:
    result = _run(args, "aes", dict(
        n_keys=args.keys, n_traces=args.traces,
        scheduler=args.scheduler, seed=args.seed,
    ), extra_kwargs=dict(jobs=args.jobs))
    print(f"AES first-round attack, {args.keys} keys × {args.traces} traces "
          f"({args.scheduler}):")
    print(f"mean upper-nibble accuracy: {result.mean_accuracy:.1%} "
          f"(paper: 98.9 % CFS / 98.1 % EEVDF)")


def _cmd_sgx(args: argparse.Namespace) -> None:
    result = _run(args, "sgx", dict(bits=1024, seed=args.seed))
    print(f"SGX base64 attack on a fresh RSA-1024 PEM "
          f"({result.char_count} chars):")
    print(f"single run : {result.single_run_coverage:6.1%} coverage, "
          f"{result.single_run_accuracy:6.2%} accuracy "
          f"(paper: 61.5 % @ 99.2 %)")
    print(f"two runs   : {result.stitched_coverage:6.1%} coverage, "
          f"{result.stitched_accuracy:6.2%} accuracy "
          f"(paper: 100 % @ 98.9 %)")


def _cmd_btb(args: argparse.Namespace) -> None:
    results = _run(args, "btb", dict(n_pairs=args.pairs, seed=args.seed),
                   extra_kwargs=dict(jobs=args.jobs))
    mean = statistics.mean(r.accuracy for r in results)
    for r in results:
        print(f"gcd({r.a}, {r.b}): {r.iterations} iterations, "
              f"{r.accuracy:.1%} branch accuracy")
    print(f"mean accuracy over {args.pairs} pairs: {mean:.1%} "
          f"(paper: 97.3 %)")


def _cmd_colocation(args: argparse.Namespace) -> None:
    if args.trials > 1:
        campaign = _run(args, "colocation-campaign", dict(
            n_trials=args.trials, n_cores=args.cores, seed=args.seed,
        ), extra_kwargs=dict(jobs=args.jobs))
        print(f"{args.cores}-core machine, {args.trials} independent trials:")
        print(f"colocated on the target core: {campaign.successes}"
              f"/{campaign.n_trials} ({campaign.success_rate:.0%})")
        print(f"stayed colocated through the attack: {campaign.stayed}"
              f"/{campaign.n_trials}")
        return
    outcome = _run(args, "colocation", dict(n_cores=args.cores, seed=args.seed))
    print(f"{args.cores}-core machine, {args.cores - 1} pinned dummies:")
    print(f"victim landed on cpu{outcome.landed_cpu} "
          f"(target cpu{outcome.target_cpu}) — "
          f"{'colocated' if outcome.colocated else 'missed'}")
    print(f"preemptions on the shared core: {outcome.preemptions_on_target}")


def _cmd_mitigations(args: argparse.Namespace) -> None:
    results = _run(args, "mitigations", dict(rounds=args.rounds, seed=args.seed),
                   extra_kwargs=dict(jobs=args.jobs))
    for r in results:
        print(f"{r.name:<22} preemptions={r.consecutive_preemptions:<6} "
              f"median insts/preempt="
              f"{r.median_instructions_per_preemption:,.0f}")


def _axis_list(text: str) -> list:
    """Comma-separated axis values; a ``{...}`` entry is parsed as a
    JSON mitigation spec, ``none`` as the undefended baseline."""
    out = []
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if entry.startswith("{"):
            out.append(json.loads(entry))
        elif entry.lower() in ("none", "off", "baseline"):
            out.append(None)
        else:
            out.append(entry)
    return out


def _cmd_defense_grid(args: argparse.Namespace) -> None:
    from repro.experiments.defense_grid import format_defense_grid
    from repro.obs.manifest import result_digest

    result = _run(args, "defense-grid", dict(
        workloads=tuple(args.workloads),
        defenses=tuple(args.defenses),
        schedulers=tuple(args.schedulers),
        seed=args.seed,
    ), extra_kwargs=dict(jobs=args.jobs))
    if args.json:
        from dataclasses import asdict

        print(json.dumps(asdict(result), indent=2, sort_keys=True))
    else:
        print(format_defense_grid(result))
    print(f"[digest] {result_digest(result)}", file=sys.stderr)


# ----------------------------------------------------------------------
# Observability verbs
# ----------------------------------------------------------------------
def _traceable_params(args: argparse.Namespace) -> dict:
    """Small-run parameters for the trace/stats demonstration verbs."""
    if args.experiment == "resolution":
        return dict(tau=args.tau, preemptions=args.preemptions,
                    seed=args.seed)
    return dict(extra_compute_ns=12_000.0, seed=args.seed)  # budget


def _cmd_trace(args: argparse.Namespace) -> None:
    import repro.obs as obs_mod

    os.environ["REPRO_TRACE"] = "1"
    obs_mod.reset()
    try:
        _run(args, args.experiment, _traceable_params(args))
        tracer = obs_mod.get_obs().tracer
        n = tracer.export(args.out)
    finally:
        os.environ.pop("REPRO_TRACE", None)
        obs_mod.reset()
    print(f"wrote {n} trace events to {args.out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")


def _cmd_stats(args: argparse.Namespace) -> None:
    import repro.obs as obs_mod

    os.environ["REPRO_METRICS"] = "1"
    obs_mod.reset()
    try:
        _run(args, args.experiment, _traceable_params(args))
        obs = obs_mod.get_obs()
        obs.publish()
        if args.format == "openmetrics":
            from repro.obs.telemetry import render_openmetrics

            sys.stdout.write(render_openmetrics(obs.metrics))
        else:
            print(obs.metrics.render())
    finally:
        os.environ.pop("REPRO_METRICS", None)
        obs_mod.reset()


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.telemetry import report_health, write_telemetry

    if not os.path.isdir(args.run_dir):
        print(f"no such run directory: {args.run_dir}", file=sys.stderr)
        return 1
    if args.write:
        path = write_telemetry(args.run_dir)
        print(f"[telemetry] {path}", file=sys.stderr)
    # A crashed sweep leaves truncated telemetry/manifests behind; the
    # report degrades to whatever partial picture the run dir supports
    # and only --strict turns the degradation into a failing exit code.
    text, warnings = report_health(args.run_dir)
    for warning in warnings:
        print(f"[report] warning: {warning}", file=sys.stderr)
    print(text)
    if warnings and args.strict:
        return 1
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.analysis.bench_trajectory import (
        check_regression, load_history, render_curve,
    )

    points = load_history(args.dir)
    print(render_curve(points, metric=args.metric))
    if not args.check:
        return 0
    check = check_regression(points, metric=args.metric,
                             threshold=args.threshold)
    print(check.message)
    return 0 if check.ok else 1


def _duration_s(value: str) -> float:
    """``--older-than``: seconds, or a number suffixed s/m/h/d."""
    value = value.strip().lower()
    factor = 1.0
    suffixes = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    if value and value[-1] in suffixes:
        factor = suffixes[value[-1]]
        value = value[:-1]
    try:
        seconds = float(value) * factor
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a duration like 3600, 30m, 12h or 7d, got {value!r}"
        )
    if seconds < 0:
        raise argparse.ArgumentTypeError("duration must be >= 0")
    return seconds


def _cache_dir_for(args: argparse.Namespace) -> str:
    cache_dir = getattr(args, "cell_cache_dir", None)
    if cache_dir is None:
        cache_dir = os.path.join(args.manifest_dir, "cellcache")
    return cache_dir


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from repro.obs.cellcache import CellCache

    cache_dir = _cache_dir_for(args)
    if not os.path.isdir(cache_dir):
        print(f"cell cache {cache_dir}: empty (directory does not exist)")
        return 0
    stats = CellCache(cache_dir).stats()
    print(f"cell cache {stats['directory']}")
    print(f"  entries  {stats['entries']:,}")
    print(f"  bytes    {stats['bytes']:,}")
    if stats["entries"]:
        import time

        now = time.time()
        print(f"  oldest   {now - stats['oldest_mtime']:,.0f} s ago")
        print(f"  newest   {now - stats['newest_mtime']:,.0f} s ago")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    from repro.obs.cellcache import CellCache

    cache_dir = _cache_dir_for(args)
    if not os.path.isdir(cache_dir):
        print(f"cell cache {cache_dir}: nothing to prune")
        return 0
    outcome = CellCache(cache_dir).prune(args.older_than)
    print(f"pruned {outcome['removed']} entr"
          f"{'y' if outcome['removed'] == 1 else 'ies'} "
          f"({outcome['removed_bytes']:,} bytes); "
          f"{outcome['kept']} kept")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.harness import run_validate

    out_dir = None if args.no_manifest else args.manifest_dir
    report = run_validate(
        cases=args.cases,
        seed=args.seed,
        cpus=args.cpus,
        scheduler=args.sched,
        bug=args.inject_bug,
        jobs=args.jobs,
        shrink=not args.no_shrink,
        out_dir=out_dir,
        max_tasks=args.max_tasks,
        profile=args.profile,
        differential=args.differential,
        uarch_cases=args.uarch_cases,
        ff_cases=args.ff_cases,
    )
    total = args.cases * len(report.schedulers)
    print(f"{total} cases on {'/'.join(report.schedulers)} "
          f"({args.cpus} CPUs, seed {args.seed}, "
          f"profile {args.profile}): "
          f"{report.n_switches} switches, {report.n_wakeups} wakeups, "
          f"{report.n_preempt_grants} wakeup preemptions, "
          f"{report.n_migrations} migrations")
    if args.uarch_cases:
        print(f"plus {args.uarch_cases} scripted cache/TLB differential "
              "case(s)")
    if args.ff_cases:
        print(f"plus {args.ff_cases} fast-forward certification case(s)")
    print(f"campaign digest: {report.digest[:16]}…")
    if report.ok:
        if args.inject_bug:
            print(f"injected bug {args.inject_bug!r} was NOT caught "
                  "by any invariant", file=sys.stderr)
            return 1
        print("all invariants held")
        return 0
    print(f"{len(report.failures)} violating case(s):")
    for failure in report.failures:
        print(f"  [{failure.scheduler}] seed {failure.case_seed}: "
              f"{', '.join(failure.invariants)} "
              f"(shrunk to {failure.shrunk_tasks} task(s))")
        if failure.reproducer_path:
            print(f"    reproducer: {failure.reproducer_path} "
                  "(re-run with `python -m repro replay`)")
        for line in failure.differential:
            print(f"    differential: {line}")
    if args.inject_bug:
        print(f"injected bug {args.inject_bug!r} caught, as expected")
        return 0
    return 1


# ----------------------------------------------------------------------
# Experiment service (``repro serve`` / ``repro submit``)
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the async experiment service until SIGINT/SIGTERM (or a
    client ``drain``), then finish in-flight cells and exit."""
    import asyncio
    import signal

    from repro.parallel import resolve_jobs
    from repro.service.server import ExperimentService, ServiceConfig

    manifest_dir = None if args.no_manifest else args.manifest_dir
    cache_dir = None if args.no_cell_cache else _cache_dir_for(args)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=resolve_jobs(args.jobs),
        queue_limit=args.queue_limit,
        cell_timeout_s=args.cell_timeout,
        max_retries=args.cell_retries,
        cache_dir=cache_dir,
        manifest_dir=manifest_dir,
        breaker_threshold=args.breaker_threshold,
        breaker_window_s=args.breaker_window,
        breaker_reset_s=args.breaker_reset,
        degraded_max_inline=args.degraded_max_inline,
        journal_dir=args.journal_dir,
    )
    service = ExperimentService(config)

    async def _main() -> None:
        await service.start()
        print(f"[serve] listening on {config.host}:{service.port} "
              f"({config.workers} worker(s), queue limit "
              f"{config.queue_limit}, cache "
              f"{cache_dir or 'disabled'})", flush=True)
        loop = asyncio.get_running_loop()

        def _request_drain() -> None:
            asyncio.ensure_future(service.drain())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _request_drain)
            except (NotImplementedError, RuntimeError):
                pass
        await service.serve_until_stopped()
        print("[serve] drained, shutting down", file=sys.stderr)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    return 0


def _param_value(raw: str):
    """A ``--param``/``--grid`` value: JSON when it parses, else the
    raw string (so ``--param scheduler=cfs`` needs no quoting)."""
    import json

    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _kv_pair(raw: str, flag: str):
    if "=" not in raw:
        raise argparse.ArgumentTypeError(
            f"{flag} expects name=value, got {raw!r}")
    name, value = raw.split("=", 1)
    return name.strip(), value


def _build_cells(args: argparse.Namespace):
    """The sweep-shaped cell list shared by ``submit`` and ``run``:
    ``--file batch.json``, or EXPERIMENT with ``--param``/``--grid``
    (cartesian product), times ``--repeat``.  None when neither form
    was given (the resume path reloads cells from ``sweep.json``)."""
    import json

    from repro.experiments.wire import cell_from_wire, grid_cells

    if getattr(args, "file", None):
        with open(args.file) as fh:
            data = json.load(fh)
        raw_cells = data["cells"] if isinstance(data, dict) else data
        cells = [cell_from_wire(obj) for obj in raw_cells]
    elif getattr(args, "experiment", None):
        base = dict(_kv_pair(p, "--param") for p in args.param or [])
        base = {k: _param_value(v) for k, v in base.items()}
        sweep = {}
        for raw in args.grid or []:
            name, values = _kv_pair(raw, "--grid")
            sweep[name] = [_param_value(v) for v in values.split(",")]
        cells = (grid_cells(args.experiment, sweep, base) if sweep
                 else [cell_from_wire({"experiment": args.experiment,
                                       "params": base})])
    else:
        return None
    return cells * max(1, getattr(args, "repeat", 1))


def _submit_journaled(args: argparse.Namespace, cells) -> int:
    """``repro submit --run-dir``: a crash-safe service-backed sweep.

    The run dir is bound to the batch with ``sweep.json``; every result
    frame is journaled *as it streams in*, so killing the client
    mid-batch loses only undelivered cells.  ``--resume`` replays the
    journal, resubmits only unjournaled cells, and never recomputes —
    the final digest list is byte-identical to an uninterrupted submit.
    """
    import json

    from repro.obs.cellcache import cell_key
    from repro.obs.journal import SweepJournal
    from repro.service import client
    from repro.sweeps import (
        CellOutcome, combined_digest, prepare_run_dir,
    )

    try:
        spec, jreplay = prepare_run_dir(args.run_dir, cells, args.resume)
    except ValueError as exc:
        print(f"[submit] {exc}", file=sys.stderr)
        return 2
    sweep_cells = spec.cells
    keys = [cell_key(c.experiment, c.params) for c in sweep_cells]

    outcomes = [None] * len(sweep_cells)
    pending: List[int] = []
    for index, (cell, key) in enumerate(zip(sweep_cells, keys)):
        digest = jreplay.digest_for(key) if key is not None else None
        if digest is not None:
            outcomes[index] = CellOutcome(
                index=index, experiment=cell.experiment, key=key,
                digest=digest, source="journal")
        else:
            pending.append(index)

    if pending:
        journal = SweepJournal(args.run_dir, spec_digest=spec.digest())

        def on_cell(cell_result) -> None:
            # cell_result.index is the index within the *submitted*
            # (pending-only) batch; map back to the sweep position.
            index = pending[cell_result.index]
            if cell_result.status == "failed" or not cell_result.digest:
                return
            outcomes[index] = CellOutcome(
                index=index, experiment=sweep_cells[index].experiment,
                key=keys[index], digest=cell_result.digest, source="ran")
            if keys[index] is not None:
                journal.record(keys[index], cell_result.digest,
                               index=index,
                               experiment=sweep_cells[index].experiment)

        try:
            client.submit_batch(
                args.host, args.port,
                [sweep_cells[index] for index in pending],
                max_attempts=args.send_retries + 1,
                deadline_s=args.deadline,
                on_cell=on_cell,
            )
        finally:
            # Killed mid-stream included: everything received so far is
            # durably journaled, so the run dir stays resumable.
            journal.close()

    done = [o for o in outcomes if o is not None]
    errors = sum(1 for o in outcomes if o is None)
    served = sum(1 for o in done if o.source == "journal")
    ran = sum(1 for o in done if o.source == "ran")
    if args.json:
        print(json.dumps({
            "run_dir": args.run_dir,
            "spec_digest": spec.digest(),
            "digests": [o.digest for o in done],
            "sweep_digest": combined_digest([o.digest for o in done]),
            "journal_served": served,
            "ran": ran,
            "errors": errors,
            "cells": len(sweep_cells),
        }, sort_keys=True))
    else:
        for outcome in done:
            print(f"  cell {outcome.index:>4}  [{outcome.source:<7}]  "
                  f"digest {outcome.digest[:16]}…")
        print(f"sweep {args.run_dir}: {len(done)}/{len(sweep_cells)} "
              f"cell(s) — {served} from journal, {ran} computed"
              + (f", {errors} error(s)" if errors else ""))
        print(f"sweep digest: "
              f"{combined_digest([o.digest for o in done])[:16]}…")
    return 0 if not errors and len(done) == len(sweep_cells) else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import client

    if args.ping:
        print(json.dumps(client.ping(args.host, args.port), sort_keys=True))
        return 0
    if args.drain_server:
        print(json.dumps(client.drain(args.host, args.port), sort_keys=True))
        return 0
    cells = _build_cells(args)
    if args.run_dir:
        if cells is None and not args.resume:
            print("submit --run-dir needs an EXPERIMENT/--file, or "
                  "--resume to continue the recorded sweep",
                  file=sys.stderr)
            return 2
        return _submit_journaled(args, cells)
    if args.resume:
        print("--resume needs --run-dir (the journal lives in the run "
              "directory)", file=sys.stderr)
        return 2
    if cells is None:
        print("submit needs an EXPERIMENT (with --param/--grid) or "
              "--file batch.json", file=sys.stderr)
        return 2
    result = client.submit_batch(
        args.host, args.port, cells,
        max_attempts=args.send_retries + 1,
        deadline_s=args.deadline,
    )
    if args.json:
        print(json.dumps({
            "batch_id": result.batch_id,
            "summary": result.summary,
            "digests": result.digests,
            "statuses": [c.status for c in result.cells],
            "sources": [c.source for c in result.cells],
        }, sort_keys=True))
    else:
        for cell in result.cells:
            digest = (cell.digest or "")[:16]
            note = cell.error or f"digest {digest}…"
            print(f"  cell {cell.index:>4}  {cell.status:<8} "
                  f"[{cell.source}]  {note}")
        summary = ", ".join(f"{k}={v}"
                            for k, v in sorted(result.summary.items()))
        print(f"batch {result.batch_id}: {len(result.cells)} cell(s) — "
              f"{summary}")
    return 0 if result.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    """``repro run``: a crash-safe local sweep inside a run directory.

    SIGINT/SIGTERM set an abort flag the completion-order runner polls;
    the journal is flushed before exit (code 130), and ``--resume``
    continues with zero recomputation of journaled cells.
    """
    import json
    import signal

    from repro.chaos import ChaosAbort
    from repro.parallel import SweepInterrupted
    from repro.sweeps import run_sweep

    cells = _build_cells(args)
    if cells is None and not args.resume:
        print("run needs an EXPERIMENT (with --param/--grid) or "
              "--file batch.json, or --resume on an existing run dir",
              file=sys.stderr)
        return 2

    flag = {"abort": False}

    def _request_abort(signum, frame) -> None:
        flag["abort"] = True

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _request_abort)
        except (ValueError, OSError):
            pass
    try:
        result = run_sweep(
            args.run_dir, cells, jobs=args.jobs, resume=args.resume,
            should_abort=lambda: flag["abort"])
    except SweepInterrupted as exc:
        print(f"[run] interrupted after {exc.completed} completed "
              f"cell(s); journal flushed — continue with --resume",
              file=sys.stderr)
        return 130
    except ChaosAbort as exc:
        print(f"[run] {exc}; journal flushed — continue with --resume",
              file=sys.stderr)
        return 130
    except ValueError as exc:
        print(f"[run] {exc}", file=sys.stderr)
        return 2
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    if args.json:
        print(json.dumps({
            "run_dir": args.run_dir,
            "spec_digest": result.spec_digest,
            "digests": [o.digest for o in result.outcomes],
            "sweep_digest": result.digest,
            "journal_served": result.journal_served,
            "ran": result.ran,
            "torn": result.torn,
            "cells": len(result.outcomes),
        }, sort_keys=True))
    else:
        for outcome in result.outcomes:
            print(f"  cell {outcome.index:>4}  [{outcome.source:<7}]  "
                  f"digest {outcome.digest[:16]}…")
        note = " (journal had a torn final line)" if result.torn else ""
        print(f"sweep {args.run_dir}: {len(result.outcomes)} cell(s) — "
              f"{result.journal_served} from journal, "
              f"{result.ran} computed{note}")
        print(f"sweep digest: {result.digest[:16]}…")
    return 0


def _cmd_chaos_plan(args: argparse.Namespace) -> int:
    """``repro chaos plan``: author a replayable fault schedule."""
    import json

    from repro.chaos import INJECTION_POINTS, ChaosSpec, FaultEvent

    rates: dict = {}
    for raw in args.rate or []:
        name, value = _kv_pair(raw, "--rate")
        if ":" not in name:
            print(f"--rate expects POINT:KIND=P, got {raw!r} "
                  f"(points: {sorted(INJECTION_POINTS)})", file=sys.stderr)
            return 2
        point, kind = name.split(":", 1)
        try:
            rates.setdefault(point.strip(), {})[kind.strip()] = float(value)
        except ValueError:
            print(f"--rate probability must be a number, got {value!r}",
                  file=sys.stderr)
            return 2
    events = []
    for raw in args.event or []:
        try:
            events.append(FaultEvent.from_dict(json.loads(raw)))
        except ValueError as exc:
            print(f"bad --event {raw!r}: {exc}", file=sys.stderr)
            return 2
    try:
        spec = ChaosSpec(seed=args.chaos_seed, rates=rates, events=events,
                         max_faults=args.max_faults)
    except ValueError as exc:
        print(f"[chaos] {exc}", file=sys.stderr)
        return 2
    path = spec.save(args.out)
    print(f"[chaos] wrote fault schedule to {path} "
          f"(activate with REPRO_CHAOS={path} or --chaos {path})",
          file=sys.stderr)
    print(path)
    return 0


def _cmd_chaos_show(args: argparse.Namespace) -> int:
    """``repro chaos show``: validate + pretty-print a schedule."""
    import json

    from repro.chaos import load_spec

    try:
        spec = load_spec(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"[chaos] unreadable schedule {args.manifest!r}: {exc}",
              file=sys.stderr)
        return 1
    print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.manifest import load_manifest, replay

    manifest = load_manifest(args.manifest)
    print(f"replaying {manifest.kind} manifest: {manifest.experiment} "
          f"(seed {manifest.seed})")
    _result, ok = replay(manifest)
    if ok:
        print(f"digest match: {manifest.result_digest[:16]}… — "
              "run reproduced bit-identically")
        return 0
    print("DIGEST MISMATCH — the code or environment diverged from the "
          "recording", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Controlled Preemption (ASPLOS 2025) reproduction",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=_jobs_type, default=0, metavar="N",
        help="worker processes for independent trials "
             "(0 = all cores, 1 = serial; default: all cores)",
    )
    parser.add_argument("--metrics", action="store_true",
                        help="collect metrics and print the table after the run")
    parser.add_argument("--telemetry", action="store_true",
                        help="collect per-cell metrics (implies --metrics "
                             "recording) and write telemetry.json beside "
                             "the run manifests")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record a Chrome/Perfetto trace to FILE")
    parser.add_argument("--progress", action="store_true",
                        help="live per-cell progress on stderr for sweeps")
    parser.add_argument("--manifest-dir", default="runs", metavar="DIR",
                        help="where run manifests are written (default: runs/)")
    parser.add_argument("--no-manifest", action="store_true",
                        help="do not write a run manifest")
    parser.add_argument("--cell-cache-dir", default=None, metavar="DIR",
                        help="content-addressed cell-result cache location "
                             "(default: <manifest-dir>/cellcache)")
    parser.add_argument("--no-cell-cache", action="store_true",
                        help="always recompute cells, never serve them "
                             "from the cache")
    parser.add_argument("--chaos", default=None, metavar="FILE",
                        help="activate a chaos fault schedule (JSON from "
                             "`repro chaos plan`; exported as REPRO_CHAOS "
                             "so pool workers inherit it — docs/CHAOS.md)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("resolution", help="Fig 4.3/4.7 histogram cell")
    p.add_argument("--tau", type=float, default=740.0)
    p.add_argument("--degrade", action="store_true",
                   help="evict the victim's iTLB entry each round")
    p.add_argument("--scheduler", choices=("cfs", "eevdf"), default="cfs")
    p.add_argument("--preemptions", type=int, default=1000)
    p.set_defaults(func=_cmd_resolution)

    p = sub.add_parser("sweep", help="τ sweep (parallel resolution cells)")
    p.add_argument("--taus", type=_tau_list, default=_tau_list("440,590,740,890,1040"),
                   help="comma-separated τ values (ns)")
    p.add_argument("--degrade", action="store_true",
                   help="evict the victim's iTLB entry each round")
    p.add_argument("--scheduler", choices=("cfs", "eevdf"), default="cfs")
    p.add_argument("--preemptions", type=int, default=1000)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("budget", help="Fig 4.4/4.5 preemption count")
    p.add_argument("--extra", type=float, default=12_000.0,
                   help="attacker measurement padding (ns)")
    p.add_argument("--nice", type=int, default=0, help="victim nice value")
    p.add_argument("--scheduler", choices=("cfs", "eevdf"), default="cfs")
    p.set_defaults(func=_cmd_budget)

    p = sub.add_parser("aes", help="§5.1 AES first-round attack")
    p.add_argument("--keys", type=int, default=5)
    p.add_argument("--traces", type=int, default=5)
    p.add_argument("--scheduler", choices=("cfs", "eevdf"), default="cfs")
    p.set_defaults(func=_cmd_aes)

    p = sub.add_parser("sgx", help="§5.2 SGX base64 PEM attack")
    p.set_defaults(func=_cmd_sgx)

    p = sub.add_parser("btb", help="§5.3 BTB control-flow attack")
    p.add_argument("--pairs", type=int, default=5)
    p.set_defaults(func=_cmd_btb)

    p = sub.add_parser("colocation", help="§4.4 colocation technique")
    p.add_argument("--cores", type=int, default=16)
    p.add_argument("--trials", type=int, default=1,
                   help="independent colocation attempts (>1 → campaign "
                        "statistics over derived seeds)")
    p.set_defaults(func=_cmd_colocation)

    p = sub.add_parser("mitigations", help="§6 defence ablation")
    p.add_argument("--rounds", type=int, default=400)
    p.set_defaults(func=_cmd_mitigations)

    p = sub.add_parser(
        "defense-grid",
        help="defense arena: every attack × every mitigation policy × "
             "both schedulers (docs/MITIGATIONS.md)",
    )
    p.add_argument("--workloads", type=_axis_list,
                   default=_axis_list("aes,btb,sgx,benign"),
                   help="comma-separated workloads "
                        "(aes, btb, sgx, benign)")
    p.add_argument("--defenses", type=_axis_list,
                   default=_axis_list("none,leash,schedguard,prefence"),
                   help="comma-separated defenses: policy names, 'none', "
                        "or JSON specs like "
                        "'{\"policy\":\"leash\",\"flag_threshold\":8}'")
    p.add_argument("--schedulers", type=_axis_list,
                   default=_axis_list("cfs,eevdf"),
                   help="comma-separated schedulers (cfs, eevdf)")
    p.add_argument("--json", action="store_true",
                   help="emit the full grid as JSON instead of the table")
    p.set_defaults(func=_cmd_defense_grid)

    p = sub.add_parser(
        "trace",
        help="run a small experiment with tracing on and export a "
             "Perfetto-loadable Chrome trace",
    )
    p.add_argument("experiment", choices=("resolution", "budget"))
    p.add_argument("--tau", type=float, default=740.0)
    p.add_argument("--preemptions", type=int, default=150,
                   help="small by default: traces grow with run length")
    p.add_argument("--out", default="trace.json", metavar="FILE")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "stats", help="run a small experiment with metrics on and print "
                      "the metrics table",
    )
    p.add_argument("experiment", choices=("resolution", "budget"))
    p.add_argument("--tau", type=float, default=740.0)
    p.add_argument("--preemptions", type=int, default=300)
    p.add_argument("--format", choices=("table", "openmetrics"),
                   default="table",
                   help="output format: human table (default) or "
                        "OpenMetrics text exposition")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "report",
        help="render a run-health report (events/s, fast-forward "
             "coverage, cache hit rates, attack counters, timing) from "
             "a run directory's manifests",
    )
    p.add_argument("run_dir", help="directory holding run-*/cell-*.json "
                                   "manifests (e.g. runs/)")
    p.add_argument("--write", action="store_true",
                   help="also write/update telemetry.json in the run dir")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when the report had to degrade (missing/"
                        "truncated telemetry.json or unreadable "
                        "manifests); default is a partial report + "
                        "warnings on stderr")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "bench",
        help="benchmark trajectory tools over benchmarks/BENCH_*.json",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser(
        "compare",
        help="print the speedup curve; --check gates the newest point "
             "against the best prior comparable point",
    )
    b.add_argument("--dir", default="benchmarks", metavar="DIR",
                   help="directory holding BENCH_*.json "
                        "(default: benchmarks/)")
    b.add_argument("--metric", default="engine_events_per_sec",
                   help="optimized-section metric to compare "
                        "(default: engine_events_per_sec)")
    b.add_argument("--check", action="store_true",
                   help="exit 1 when the newest point regresses beyond "
                        "--threshold")
    b.add_argument("--threshold", type=float, default=0.20,
                   help="fractional drop that fails --check "
                        "(default: 0.20)")
    b.set_defaults(func=_cmd_bench_compare)

    p = sub.add_parser(
        "cache",
        help="inspect or prune the content-addressed cell-result cache",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    c = cache_sub.add_parser("stats",
                             help="entry count, bytes on disk, age range")
    c.set_defaults(func=_cmd_cache_stats)
    c = cache_sub.add_parser("prune", help="age-based eviction")
    c.add_argument("--older-than", type=_duration_s, required=True,
                   metavar="AGE",
                   help="remove entries older than AGE "
                        "(seconds, or suffixed s/m/h/d, e.g. 7d)")
    c.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser(
        "validate",
        help="fuzz the simulated schedulers against invariant oracles "
             "(see docs/VALIDATION.md)",
    )
    p.add_argument("--cases", type=int, default=200,
                   help="random workloads per scheduler (default: 200)")
    p.add_argument("--cpus", type=int, default=2,
                   help="simulated CPUs per case (default: 2)")
    p.add_argument("--sched", choices=("cfs", "eevdf", "both"),
                   default="both")
    p.add_argument("--max-tasks", type=int, default=6,
                   help="max tasks per generated workload (default: 6)")
    from repro.validate.harness import BUG_NAMES as _bugs
    p.add_argument("--inject-bug", choices=_bugs, default=None,
                   help="plant a known scheduler bug to demonstrate the "
                        "oracles catch it (exit 0 iff caught)")
    p.add_argument("--profile", choices=("mixed", "imbalance", "classic"),
                   default="mixed",
                   help="workload family: 'imbalance' forces cross-CPU "
                        "migration mixes, 'classic' is the original "
                        "single-queue-heavy diet, 'mixed' draws per seed "
                        "(default)")
    p.add_argument("--differential", action="store_true",
                   help="re-run every failing seed across the CFS/EEVDF "
                        "feature grid and print the divergence summary")
    p.add_argument("--uarch-cases", type=int, default=0, metavar="N",
                   help="append N scripted cache/TLB differential cases "
                        "(machine vs brute-force reference model)")
    p.add_argument("--ff-cases", type=int, default=0, metavar="N",
                   help="append N fast-forward certification cases "
                        "(arithmetic fast paths vs the per-instruction "
                        "interpreter)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip minimizing failing cases")
    # Accept the global --seed/--jobs after the verb too (SUPPRESS keeps
    # the subparser from clobbering a value given before it).
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p.add_argument("--jobs", type=_jobs_type, default=argparse.SUPPRESS,
                   metavar="N")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "serve",
        help="run the async experiment service: batches of cells in, "
             "manifest-keyed dedupe against the cell cache, worker-pool "
             "execution (see docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral; the chosen "
                        "port is printed on stdout)")
    p.add_argument("--queue-limit", type=int, default=256,
                   help="max admitted-but-unfinished cells before "
                        "submissions get backpressure (default: 256)")
    p.add_argument("--cell-timeout", type=float, default=120.0,
                   metavar="S",
                   help="per-cell wall-clock timeout; a timed-out cell "
                        "counts as a transport failure and is retried")
    p.add_argument("--cell-retries", type=int, default=2, metavar="N",
                   help="transport-failure retries per cell (the retried "
                        "cell is identical — never re-seeded; default: 2)")
    p.add_argument("--breaker-threshold", type=int, default=3, metavar="N",
                   help="pool replacements inside --breaker-window that "
                        "trip the circuit breaker into degraded inline "
                        "execution (default: 3)")
    p.add_argument("--breaker-window", type=float, default=30.0,
                   metavar="S",
                   help="sliding window for counting pool replacements "
                        "(default: 30s)")
    p.add_argument("--breaker-reset", type=float, default=60.0,
                   metavar="S",
                   help="how long degraded mode lasts before the breaker "
                        "half-opens and tries a fresh pool (default: 60s)")
    p.add_argument("--degraded-max-inline", type=int, default=2,
                   metavar="N",
                   help="concurrent inline cells while degraded "
                        "(default: 2)")
    p.add_argument("--journal-dir", default=None, metavar="DIR",
                   help="append each completed cell's key+digest to a sweep "
                        "journal in DIR (survives crashes; clients can "
                        "also journal on their side with submit "
                        "--run-dir)")
    # Accept the global --jobs after the verb too.
    p.add_argument("--jobs", type=_jobs_type, default=argparse.SUPPRESS,
                   metavar="N")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        help="submit experiment cells to a running `repro serve` and "
             "stream per-cell results",
    )
    p.add_argument("experiment", nargs="?", default=None,
                   help="registry verb (e.g. resolution) or "
                        "repro.module:function path")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=False, default=7341)
    p.add_argument("--param", action="append", metavar="NAME=VALUE",
                   help="fixed parameter (JSON value or bare string); "
                        "repeatable")
    p.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                   help="sweep axis; repeated axes form the cartesian "
                        "product (the overlapping-grid shape the "
                        "service dedupes)")
    p.add_argument("--file", default=None, metavar="BATCH_JSON",
                   help="JSON file with a list of cells (or "
                        "{'cells': [...]}) instead of EXPERIMENT")
    p.add_argument("--repeat", type=int, default=1,
                   help="submit the batch's cells N times over "
                        "(duplicates exercise dedupe; default 1)")
    p.add_argument("--send-retries", type=int, default=4, metavar="N",
                   help="resubmissions to attempt when the server "
                        "answers queue-full backpressure (default: 4)")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="total wall-clock budget for the backpressure "
                        "resubmit loop (default: unbounded)")
    p.add_argument("--run-dir", default=None, metavar="DIR",
                   help="make the submit crash-safe: bind the batch to "
                        "DIR/sweep.json and journal each result frame "
                        "as it streams in (resume with --resume)")
    p.add_argument("--resume", action="store_true",
                   help="with --run-dir: replay the journal and resubmit "
                        "only unjournaled cells (zero recomputation)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    p.add_argument("--ping", action="store_true",
                   help="just check liveness and print the pong")
    p.add_argument("--drain-server", action="store_true",
                   help="ask the server to finish queued work and shut "
                        "down")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "run",
        help="crash-safe local sweep: execute a cell grid inside a run "
             "directory with a write-ahead journal; --resume continues "
             "an interrupted sweep with zero recomputation",
    )
    p.add_argument("experiment", nargs="?", default=None,
                   help="registry verb (e.g. resolution) or "
                        "repro.module:function path")
    p.add_argument("--run-dir", required=True, metavar="DIR",
                   help="durable sweep directory (sweep.json + "
                        "journal.ndjson live here)")
    p.add_argument("--resume", action="store_true",
                   help="continue the sweep recorded in --run-dir "
                        "(journaled cells are served, never recomputed)")
    p.add_argument("--param", action="append", metavar="NAME=VALUE",
                   help="fixed parameter (JSON value or bare string); "
                        "repeatable")
    p.add_argument("--grid", action="append", metavar="NAME=V1,V2,...",
                   help="sweep axis; repeated axes form the cartesian "
                        "product")
    p.add_argument("--file", default=None, metavar="BATCH_JSON",
                   help="JSON file with a list of cells (or "
                        "{'cells': [...]}) instead of EXPERIMENT")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the grid's cells N times over (default 1)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary on stdout")
    # Accept the global --jobs/--seed after the verb too.
    p.add_argument("--jobs", type=_jobs_type, default=argparse.SUPPRESS,
                   metavar="N")
    p.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "chaos",
        help="author and inspect deterministic fault schedules "
             "(docs/CHAOS.md)",
    )
    chaos_sub = p.add_subparsers(dest="chaos_command", required=True)
    c = chaos_sub.add_parser(
        "plan", help="write a chaos manifest from --rate/--event flags")
    c.add_argument("--chaos-seed", type=int, default=0,
                   help="root seed for the schedule's rate draws "
                        "(default: 0)")
    c.add_argument("--rate", action="append", metavar="POINT:KIND=P",
                   help="probabilistic fault, e.g. "
                        "cellcache.fetch:corrupt=0.05; repeatable")
    c.add_argument("--event", action="append", metavar="JSON",
                   help="scripted fault, e.g. '{\"point\":\"service.cell\","
                        "\"kind\":\"worker_kill\",\"match\":{\"seed\":123,"
                        "\"attempt\":0}}'; repeatable")
    c.add_argument("--max-faults", type=int, default=None, metavar="N",
                   help="per-process cap on executed faults "
                        "(default: unlimited)")
    c.add_argument("--out", default="chaos.json", metavar="FILE",
                   help="where to write the schedule (default: chaos.json)")
    c.set_defaults(func=_cmd_chaos_plan)
    c = chaos_sub.add_parser(
        "show", help="validate and pretty-print a chaos manifest")
    c.add_argument("manifest", help="path to a chaos schedule JSON")
    c.set_defaults(func=_cmd_chaos_show)

    p = sub.add_parser(
        "replay", help="re-execute a run manifest and verify bit-identity",
    )
    p.add_argument("manifest", help="path to a manifest JSON file")
    p.set_defaults(func=_cmd_replay)
    return parser


def _configure_obs(args: argparse.Namespace) -> None:
    """Install the run's observability config, via the environment so
    process-pool workers (fork or spawn) inherit it."""
    import repro.obs as obs_mod

    def _set(name: str, on: bool, value: str = "1") -> None:
        if on:
            os.environ[name] = value
        else:
            os.environ.pop(name, None)

    telemetry = bool(getattr(args, "telemetry", False))
    # --telemetry needs the workers to record metric snapshots into
    # their cell manifests, so it implies metric *collection* (the
    # post-run table still prints only with an explicit --metrics).
    _set("REPRO_METRICS",
         bool(getattr(args, "metrics", False)) or telemetry)
    _set("REPRO_TELEMETRY", telemetry)
    _set("REPRO_TRACE", getattr(args, "trace", None) is not None)
    _set("REPRO_PROGRESS", bool(getattr(args, "progress", False)))
    manifest_dir = None if args.no_manifest else args.manifest_dir
    _set("REPRO_MANIFEST_DIR", manifest_dir is not None, manifest_dir or "")
    # Cell cache rides with the manifests by default (same trust
    # domain, same directory tree); --no-cell-cache wins over both the
    # default and an explicit --cell-cache-dir.
    cache_dir = getattr(args, "cell_cache_dir", None)
    if cache_dir is None and manifest_dir is not None:
        cache_dir = os.path.join(manifest_dir, "cellcache")
    if getattr(args, "no_cell_cache", False):
        cache_dir = None
    _set("REPRO_CELL_CACHE_DIR", cache_dir is not None, cache_dir or "")
    # Chaos rides the same env-var channel so pool workers (fork or
    # spawn) replay the exact same fault schedule as the parent.  An
    # externally exported REPRO_CHAOS is left alone when --chaos is not
    # given (the CI smoke sets it around the whole serve/submit pair).
    chaos = getattr(args, "chaos", None)
    if chaos is not None:
        os.environ["REPRO_CHAOS"] = chaos
        from repro.chaos import reset_active

        reset_active()
    obs_mod.reset()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_obs(args)
    rc = args.func(args) or 0
    import repro.obs as obs_mod

    obs = obs_mod.get_obs()
    if getattr(args, "metrics", False) and obs.metrics.enabled:
        obs.publish()
        print(obs.metrics.render())
    if getattr(args, "trace", None) and obs.tracer.enabled:
        n = obs.tracer.export(args.trace)
        print(f"[trace] wrote {n} events to {args.trace}", file=sys.stderr)
    if (getattr(args, "telemetry", False) and not args.no_manifest
            and os.path.isdir(args.manifest_dir)):
        from repro.obs.telemetry import write_telemetry

        path = write_telemetry(args.manifest_dir)
        print(f"[telemetry] {path}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
