"""Event tracer: recording, ring bounding, Chrome-trace schema, and the
end-to-end acceptance check that a traced resolution run shows attacker
preemption spans."""

import json

import pytest

import repro.obs as obs_mod
from repro.obs.trace import EventTracer, REQUIRED_FIELDS, validate_chrome_trace


@pytest.fixture(autouse=True)
def _fresh_obs_default():
    """Keep the process-wide obs default out of these tests' way."""
    obs_mod.reset()
    yield
    obs_mod.reset()


class TestRecording:
    def test_span_and_instant_events(self):
        tracer = EventTracer()
        tracer.begin("victim", 100.0, pid=0, tid=7)
        tracer.instant("wakeup", 150.0, pid=0, tid=8, args={"preempted": True})
        tracer.end("victim", 200.0, pid=0, tid=7)
        tracer.complete("irq", 300.0, 25.0, pid=0, tid=0)
        assert len(tracer) == 4

    def test_disabled_records_nothing(self):
        tracer = EventTracer(enabled=False)
        tracer.begin("x", 0.0, 0, 0)
        tracer.instant("y", 1.0, 0, 0)
        tracer.thread_name(0, 1, "t")
        assert len(tracer) == 0
        assert tracer.to_chrome()["traceEvents"] == []

    def test_ring_bounding_counts_drops(self):
        tracer = EventTracer(capacity=8)
        for i in range(20):
            tracer.instant(f"e{i}", float(i), 0, 0)
        assert len(tracer) == 8
        chrome = tracer.to_chrome()
        assert chrome["otherData"]["dropped_events"] == 12
        names = [e["name"] for e in chrome["traceEvents"]]
        assert names == [f"e{i}" for i in range(12, 20)]

    def test_track_names_survive_wraparound(self):
        tracer = EventTracer(capacity=2)
        tracer.process_name(0, "cpu0")
        tracer.thread_name(0, 7, "victim")
        for i in range(10):
            tracer.instant(f"e{i}", float(i), 0, 7)
        metadata = [e for e in tracer.to_chrome()["traceEvents"]
                    if e["ph"] == "M"]
        assert {e["args"]["name"] for e in metadata} == {"cpu0", "victim"}


class TestChromeExport:
    def test_schema_fields_and_units(self):
        tracer = EventTracer()
        tracer.begin("span", 2000.0, 0, 1, args={"reason": "tick"})
        tracer.end("span", 4000.0, 0, 1)
        tracer.complete("x", 1000.0, 500.0, 0, 2)
        tracer.instant("mark", 3000.0, 0, 1)
        chrome = tracer.to_chrome()
        assert validate_chrome_trace(chrome) == []
        by_ph = {e["ph"]: e for e in chrome["traceEvents"]}
        assert by_ph["B"]["ts"] == 2.0  # ns → µs
        assert by_ph["X"]["dur"] == 0.5
        assert by_ph["i"]["s"] == "t"
        assert by_ph["B"]["args"] == {"reason": "tick"}

    def test_export_writes_loadable_json(self, tmp_path):
        tracer = EventTracer()
        tracer.begin("a", 0.0, 0, 1)
        tracer.end("a", 10.0, 0, 1)
        path = tmp_path / "trace.json"
        n = tracer.export(str(path))
        assert n == 2
        assert validate_chrome_trace(json.loads(path.read_text())) == []

    def test_validator_flags_bad_events(self):
        problems = validate_chrome_trace(
            {"traceEvents": [{"name": "x", "ph": "B"}]}
        )
        assert any("missing" in p for p in problems)
        assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]


class TestEndToEnd:
    """Acceptance criterion: a traced run produces valid Chrome JSON
    showing the attacker's preemption spans."""

    def test_traced_resolution_run(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "trace.json"
        assert main(["--no-manifest", "trace", "resolution",
                     "--preemptions", "60", "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        for event in events:
            for field in REQUIRED_FIELDS:
                assert field in event
        # Attacker schedule-in spans exist and are preemption-marked.
        attacker_spans = [e for e in events
                         if e["ph"] == "B" and e["name"].startswith("attacker")]
        assert attacker_spans, "no attacker spans in trace"
        preempts = [e for e in events
                    if e["ph"] == "i" and e["name"].startswith("preempt")]
        assert preempts, "no preemption markers in trace"
        # Victim lane exists too, on the same simulated CPU.
        assert any(e["ph"] == "B" and e["name"] == "victim" for e in events)

    def test_trace_determinism(self, tmp_path):
        """Tracing must not perturb results: same seed, same samples."""
        from repro.experiments.resolution import run_resolution

        baseline = run_resolution(740.0, preemptions=40, seed=3).samples
        obs_mod.configure(trace=True)
        try:
            traced = run_resolution(740.0, preemptions=40, seed=3).samples
        finally:
            obs_mod.reset()
        assert traced == baseline
