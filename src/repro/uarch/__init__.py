"""Microarchitectural substrate: caches, TLBs, BTB, prefetch, timing.

This package models the i9-9900K structures the paper's side channels
exploit.  The model is behavioural, not cycle-accurate: each structure
tracks presence/recency state (which lines, translations and branch
targets are resident) and charges latencies from
:mod:`repro.uarch.timing` so that an attacker timing its own accesses
observes the same hit/miss separation the paper relies on.
"""

from repro.uarch.address import (
    CACHE_LINE_SIZE,
    PAGE_SIZE,
    line_addr,
    line_index,
    page_number,
    same_line,
)
from repro.uarch.btb import Btb, BtbEntry
from repro.uarch.cache import CacheGeometry, CacheLevel, MemoryHierarchy
from repro.uarch.eviction import (
    build_cache_eviction_set,
    build_llc_eviction_set,
    build_tlb_eviction_set,
)
from repro.uarch.timing import (
    CPU_FREQ_GHZ,
    LATENCY,
    cycles_to_ns,
    ns_to_cycles,
)
from repro.uarch.tlb import Tlb, TlbHierarchy

__all__ = [
    "CACHE_LINE_SIZE",
    "PAGE_SIZE",
    "line_addr",
    "line_index",
    "page_number",
    "same_line",
    "Btb",
    "BtbEntry",
    "CacheGeometry",
    "CacheLevel",
    "MemoryHierarchy",
    "build_cache_eviction_set",
    "build_llc_eviction_set",
    "build_tlb_eviction_set",
    "CPU_FREQ_GHZ",
    "LATENCY",
    "cycles_to_ns",
    "ns_to_cycles",
    "Tlb",
    "TlbHierarchy",
]
