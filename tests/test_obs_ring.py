"""RingBuffer: unbounded fast path, bounded wraparound, list parity."""

import pytest

from repro.obs.ring import RingBuffer


class TestUnbounded:
    def test_behaves_like_a_list(self):
        ring = RingBuffer()
        for i in range(10):
            ring.append(i)
        assert list(ring) == list(range(10))
        assert len(ring) == 10
        assert ring.dropped == 0
        assert ring[0] == 0 and ring[-1] == 9
        assert ring[2:5] == [2, 3, 4]

    def test_append_is_list_append(self):
        ring = RingBuffer()
        assert ring.append == ring._items.append

    def test_equality_with_list(self):
        ring = RingBuffer()
        assert ring == []
        ring.extend([1, 2, 3])
        assert ring == [1, 2, 3]
        assert ring == (1, 2, 3)
        assert ring != [1, 2]

    def test_bool(self):
        ring = RingBuffer()
        assert not ring
        ring.append(1)
        assert ring


class TestBounded:
    def test_no_wrap_below_capacity(self):
        ring = RingBuffer(4)
        ring.extend([1, 2, 3])
        assert list(ring) == [1, 2, 3]
        assert ring.dropped == 0

    def test_wraparound_keeps_newest(self):
        ring = RingBuffer(4)
        ring.extend(range(10))
        assert list(ring) == [6, 7, 8, 9]
        assert ring.dropped == 6
        assert len(ring) == 4

    def test_indexing_after_wrap(self):
        ring = RingBuffer(3)
        ring.extend(range(7))  # keeps 4, 5, 6
        assert ring[0] == 4
        assert ring[2] == 6
        assert ring[-1] == 6
        with pytest.raises(IndexError):
            ring[3]

    def test_slice_after_wrap(self):
        ring = RingBuffer(3)
        ring.extend(range(7))
        assert ring[1:] == [5, 6]

    def test_equality_after_wrap(self):
        a = RingBuffer(3)
        a.extend(range(7))
        b = RingBuffer(3)
        b.extend(range(4, 7))
        assert a == b
        assert a == [4, 5, 6]

    def test_clear_resets_wrap_state(self):
        ring = RingBuffer(2)
        ring.extend(range(5))
        ring.clear()
        assert list(ring) == []
        assert ring.dropped == 0
        ring.extend([10, 11])
        assert list(ring) == [10, 11]

    def test_capacity_one(self):
        ring = RingBuffer(1)
        ring.extend(range(5))
        assert list(ring) == [4]
        assert ring.dropped == 4

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(0)
        with pytest.raises(ValueError):
            RingBuffer(-3)

    def test_repr_mentions_drops(self):
        ring = RingBuffer(2)
        ring.extend(range(5))
        assert "dropped=3" in repr(ring)
