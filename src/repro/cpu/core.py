"""Logical core: executes instructions against microarchitectural state.

The core charges each retired instruction a cycle cost assembled from

* the fetch path — iTLB translation (only when the PC crosses into a
  new page) and an I-cache line fill (only when the PC crosses into a
  new line or the line is not resident),
* BTB prediction — a valid colliding entry triggers a target-line
  prefetch (the §5.3 channel) and a misprediction penalty when the
  prediction disagrees with the actual next PC,
* the execute path — D-TLB translation plus data-cache latency for
  loads, a fixed ``lfence`` cost for LVI-fenced instructions.

Interrupt semantics follow hardware: interrupts are taken at
instruction boundaries, so an instruction that has begun executing when
the timer fires still retires.  This boundary rule is what makes the
paper's performance-degradation single-stepping work: a slow first
instruction widens the window in which *exactly one* instruction
retires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cpu.isa import Instruction, InstrKind
from repro.cpu.program import Program
from repro.uarch.address import line_addr, page_number
from repro.uarch.btb import Btb
from repro.uarch.cache import MemoryHierarchy
from repro.uarch.timing import LatencyModel, cycles_to_ns
from repro.uarch.tlb import TlbHierarchy

#: Upper bits preserved when the BTB's 32-bit target is resolved against
#: the fetch region (see Btb docstring / Fig 5.3's 4 GiB padding).
_REGION_MASK = ~((1 << 32) - 1)


@dataclass
class CoreStats:
    instructions_retired: int = 0
    loads: int = 0
    stores: int = 0
    mispredicts: int = 0
    speculative_issues: int = 0


class Core:
    """One logical core bound to the machine's shared structures."""

    def __init__(
        self,
        core_id: int,
        hierarchy: MemoryHierarchy,
        tlbs: TlbHierarchy,
        btb: Btb,
        latency: LatencyModel,
    ):
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.tlbs = tlbs
        self.btb = btb
        self.latency = latency
        self.stats = CoreStats()
        self._last_fetch_line: Optional[int] = None
        self._last_fetch_page: Optional[int] = None
        self._pipeline_cold = True
        self._warmup_remaining = latency.frontend_warmup_insts

    # ------------------------------------------------------------------
    # Context switching hooks
    # ------------------------------------------------------------------
    def on_context_switch(self) -> None:
        """Reset fetch locality; the next instruction re-probes I-side
        structures (its line/page may have been evicted meanwhile)."""
        self._last_fetch_line = None
        self._last_fetch_page = None
        self._pipeline_cold = True
        self._warmup_remaining = self.latency.frontend_warmup_insts

    # ------------------------------------------------------------------
    # Instruction execution (victim path)
    # ------------------------------------------------------------------
    def execute(self, asid: int, inst: Instruction) -> float:
        """Execute one instruction for address space ``asid``.

        Returns the cost in **nanoseconds** and applies all
        microarchitectural side effects.
        """
        cycles = float(self.latency.base_inst)
        if self._pipeline_cold:
            cycles += self.latency.pipeline_refill
            self._pipeline_cold = False
        if self._warmup_remaining > 0:
            cycles += self.latency.frontend_warmup_extra
            self._warmup_remaining -= 1
        cycles += self._fetch(asid, inst.pc)
        predicted = self.btb.predict(inst.pc)
        if predicted is not None:
            resolved = (inst.pc & _REGION_MASK) | (predicted & ~_REGION_MASK)
            self.hierarchy.prefetch(self.core_id, resolved, kind="inst")
            if resolved != inst.next_pc:
                cycles += self.latency.branch_mispredict
                self.stats.mispredicts += 1
        if inst.kind.is_control_transfer:
            if inst.kind is not InstrKind.BRANCH or inst.taken:
                target = inst.target if inst.target is not None else inst.next_pc
                self.btb.on_control_transfer(inst.pc, target)
        else:
            self.btb.on_plain_instruction(inst.pc)
        if inst.kind is InstrKind.LOAD:
            assert inst.mem_addr is not None
            cycles += self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
            cycles += self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.loads += 1
        elif inst.kind is InstrKind.STORE:
            assert inst.mem_addr is not None
            cycles += self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
            self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.stores += 1
        if inst.fenced:
            cycles += self.latency.lfence
        self.stats.instructions_retired += 1
        return cycles_to_ns(cycles)

    def issue_speculative(self, asid: int, inst: Instruction) -> None:
        """Apply only the cache side effects of a squashed instruction.

        Used for the post-interrupt speculative window: loads beyond the
        retirement boundary still pollute the caches (Fig 5.1's smear)
        but retire nothing and cost the victim no time.
        """
        if inst.kind.is_memory and inst.mem_addr is not None:
            self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
            self.stats.speculative_issues += 1

    def _fetch(self, asid: int, pc: int) -> float:
        """Frontend cost for fetching ``pc``; 0 when staying on a warm line."""
        cycles = 0.0
        page = page_number(pc)
        if page != self._last_fetch_page:
            cycles += self.tlbs.translate_fetch(self.core_id, asid, pc)
            self._last_fetch_page = page
        line = line_addr(pc)
        if line != self._last_fetch_line:
            latency = self.hierarchy.access(self.core_id, pc, kind="inst")
            if latency > self.latency.l1_hit:
                cycles += latency  # pipelined L1 hits are free; misses stall
            self._last_fetch_line = line
        return cycles

    # ------------------------------------------------------------------
    # Program execution against a deadline (used by the kernel)
    # ------------------------------------------------------------------
    def run_program(
        self,
        asid: int,
        program: Program,
        start: float,
        deadline: float,
        *,
        spec_lookahead: int = 0,
    ) -> Tuple[int, float]:
        """Run ``program`` from ``start`` until an interrupt at ``deadline``.

        Returns ``(instructions_retired, end_time)``.  Per the boundary
        rule, an instruction whose execution straddles the deadline
        still retires, so ``end_time`` may exceed ``deadline``.  After
        the boundary, up to ``spec_lookahead`` further instructions
        issue their memory effects speculatively (suppressed past a
        ``fenced`` instruction).
        """
        t = start
        retired = 0
        while t < deadline:
            bulk_loops = self._try_loop_fast_forward(asid, program, t, deadline)
            if bulk_loops:
                loops, elapsed = bulk_loops
                profile = program.loop_profile(program.retired)
                assert profile is not None
                count = loops * profile.insts_per_loop
                program.retired += count
                self.stats.instructions_retired += count
                retired += count
                t += elapsed
                continue
            inst = program.current()
            if inst is None:
                return retired, t  # program finished before the interrupt
            cost = self.execute(asid, inst)
            t += cost
            program.retire()
            retired += 1
            if t >= deadline:
                break
            run = program.uniform_region_length(program.retired)
            if run > 1 and not inst.fenced and self._warmup_remaining == 0:
                per_inst = cycles_to_ns(self.latency.base_inst)
                budget = int((deadline - t) / per_inst)
                bulk = min(run, max(budget, 0))
                if bulk > 0:
                    # Uniform straight-line region on a warm line: retire
                    # arithmetically without touching uarch state.
                    for _ in range(bulk):
                        program.retire()
                    self.stats.instructions_retired += bulk
                    retired += bulk
                    t += bulk * per_inst
        if spec_lookahead > 0 and retired >= 0:
            self.speculate(asid, program, spec_lookahead)
        return retired, t

    def _try_loop_fast_forward(
        self, asid: int, program: Program, t: float, deadline: float
    ):
        """Whole-loop fast-forward for steady-state tight loops.

        Engages only when (a) the program reports a loop profile at its
        current index, (b) the remaining window covers at least two full
        iterations, and (c) the loop's entire footprint is already
        resident (every line in this core's L1I, every page translated),
        so per-iteration cost is exactly ``cycles_per_loop``.  Returns
        ``(iterations, elapsed_ns)`` or None.
        """
        profile = program.loop_profile(program.retired)
        if profile is None or self._warmup_remaining > 0:
            return None
        per_loop_ns = cycles_to_ns(profile.cycles_per_loop)
        window = deadline - t
        if window < 2 * per_loop_ns:
            return None
        l1i = self.hierarchy.l1i[self.core_id]
        if not all(l1i.contains(line) for line in profile.line_addrs):
            return None
        if not all(
            self.tlbs.itlb[self.core_id].contains(asid, vpn)
            for vpn in profile.page_vpns
        ):
            return None
        loops = int(window / per_loop_ns)
        if profile.max_loops is not None:
            loops = min(loops, profile.max_loops)
        if loops < 1:
            return None
        return loops, loops * per_loop_ns

    def warm_resume(self, asid: int, program: Program, depth: int) -> None:
        """AEX-Notify model (§6, Constable et al.): a trusted in-enclave
        prefetch handler runs after ERESUME, warming the working set of
        the next ``depth`` instructions (lines, translations, data) and
        refilling the frontend, so the enclave makes significant forward
        progress before the next interrupt can land."""
        for offset in range(depth):
            inst = program.instruction_at(program.retired + offset)
            if inst is None:
                break
            self.tlbs.translate_fetch(self.core_id, asid, inst.pc)
            self.hierarchy.access(self.core_id, inst.pc, kind="inst")
            if inst.mem_addr is not None:
                self.tlbs.translate_data(self.core_id, asid, inst.mem_addr)
                self.hierarchy.access(self.core_id, inst.mem_addr, kind="data")
        self._pipeline_cold = False
        self._warmup_remaining = 0

    def speculate(self, asid: int, program: Program, window: int) -> None:
        """Issue cache effects for up to ``window`` unretired instructions."""
        last_retired = program.instruction_at(program.retired - 1)
        if last_retired is not None and last_retired.fenced:
            return
        for offset in range(window):
            inst = program.instruction_at(program.retired + offset)
            if inst is None:
                return
            if inst.fenced:
                # An lfence after the load serializes: neither this load
                # nor anything younger issues before the squash lands.
                return
            self.issue_speculative(asid, inst)
