"""The mitigation policy subsystem: canonical specs, stack composition,
per-policy mechanics, and the kernel's zero-cost default path.

The canonicalization tests double as the dedupe contract for the
defense arena: every spelling of the same defense must produce one
cell-cache key, and defense-on must never share a key with defense-off
(Hypothesis hunts the nested-param spellings humans produce).
"""

from __future__ import annotations

import tempfile
from types import SimpleNamespace

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.machine import Machine, MachineConfig
from repro.experiments.wire import WireError, cell_from_wire
from repro.kernel.threads import ComputeBody
from repro.mitigations.leash import LeashPolicy
from repro.mitigations.policy import (
    MITIGATION_POLICIES,
    MitigationPolicy,
    MitigationStack,
    build_mitigation,
    build_stack,
    canonical_mitigation,
    mitigation_name,
)
from repro.mitigations.prefence import PreFencePolicy
from repro.mitigations.schedguard import SchedGuardPolicy
from repro.obs.cellcache import CellCache
from repro.obs.manifest import _restore, _sanitize
from repro.sched.task import Task

CACHE = CellCache(tempfile.mkdtemp(prefix="mitigation-keys-"))


def make_task(name, pid=None):
    return Task(name, body=ComputeBody(), pid=pid)


def make_rq(queued=(1,)):
    return SimpleNamespace(queued=list(queued))


# ----------------------------------------------------------------------
# Canonical specs
# ----------------------------------------------------------------------
class TestCanonicalMitigation:
    def test_registry_has_all_three(self):
        assert {"leash", "schedguard", "prefence"} <= set(MITIGATION_POLICIES)

    @pytest.mark.parametrize("spelling", [None, "none", "off", "baseline",
                                          {"policy": "none"}])
    def test_no_defense_spellings_are_none(self, spelling):
        assert canonical_mitigation(spelling) is None
        assert mitigation_name(spelling) == "none"

    def test_name_and_dict_spellings_agree(self):
        assert (canonical_mitigation("leash")
                == canonical_mitigation({"policy": "leash"}))

    def test_defaults_filled_and_idempotent(self):
        canonical = canonical_mitigation("schedguard")
        assert canonical["slot_ns"] == 500_000.0
        assert canonical["protect"] == ["victim"]
        assert canonical_mitigation(canonical) == canonical

    def test_int_coerces_where_default_is_float(self):
        a = canonical_mitigation({"policy": "leash", "window_ns": 250000})
        b = canonical_mitigation({"policy": "leash", "window_ns": 250000.0})
        assert a == b
        assert isinstance(a["window_ns"], float)

    def test_protect_collections_sort_and_dedupe(self):
        a = canonical_mitigation({"policy": "schedguard",
                                  "protect": ["b", "a", "a"]})
        b = canonical_mitigation({"policy": "schedguard",
                                  "protect": ("a", "b")})
        assert a == b
        assert a["protect"] == ["a", "b"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown mitigation policy"):
            canonical_mitigation("frobnicate")

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ValueError, match="unknown kwarg"):
            canonical_mitigation({"policy": "leash", "windw_ns": 1.0})

    def test_policy_instance_round_trips(self):
        policy = SchedGuardPolicy(slot_ns=250_000.0, protect=("db", "web"))
        canonical = canonical_mitigation(policy)
        rebuilt = build_mitigation(canonical)
        assert canonical_mitigation(rebuilt) == canonical

    def test_json_sanitize_round_trip_is_stable(self):
        """The wire carries sanitized values; a sanitize/restore cycle
        must not change the canonical form (lists stay lists)."""
        canonical = canonical_mitigation("schedguard")
        round_tripped = _restore(_sanitize(canonical))
        assert canonical_mitigation(round_tripped) == canonical


_LEASH_DEFAULTS = canonical_mitigation("leash")
_LEASH_KWARGS = sorted(k for k in _LEASH_DEFAULTS if k != "policy")


class TestNestedParamDigestStability:
    """Satellite: Hypothesis digest stability for nested defense params
    through the full wire path (``run_defense_cell.__wire_canonical__``
    consumed by ``normalize_params``)."""

    @given(explicit=st.sets(st.sampled_from(_LEASH_KWARGS)),
           as_int=st.booleans(), seed=st.integers(0, 2**31))
    def test_leash_spellings_share_one_key(self, explicit, as_int, seed):
        spec = {"policy": "leash"}
        for name in explicit:
            value = _LEASH_DEFAULTS[name]
            if as_int and isinstance(value, float) and value.is_integer():
                value = int(value)
            spec[name] = value
        lean = cell_from_wire({"experiment": "defense-cell",
                               "params": {"workload": "btb", "seed": seed,
                                          "defense": "leash"}})
        fat = cell_from_wire({"experiment": "defense-cell",
                              "params": {"workload": "btb", "seed": seed,
                                         "scheduler": "cfs",
                                         "defense": spec}})
        assert lean == fat
        key = CACHE.key_for(lean.experiment, lean.params)
        assert key is not None
        assert key == CACHE.key_for(fat.experiment, fat.params)

    @given(protect=st.lists(st.sampled_from(["victim", "db", "web", "a"]),
                            min_size=1, max_size=6),
           slot_int=st.booleans())
    def test_schedguard_protect_order_never_splits_key(self, protect,
                                                       slot_int):
        slot = 500_000 if slot_int else 500_000.0
        a = cell_from_wire({"experiment": "defense-cell",
                            "params": {"workload": "aes", "seed": 1,
                                       "defense": {"policy": "schedguard",
                                                   "slot_ns": slot,
                                                   "protect": protect}}})
        b = cell_from_wire({"experiment": "defense-cell",
                            "params": {"workload": "aes", "seed": 1,
                                       "defense": {"policy": "schedguard",
                                                   "slot_ns": 500_000.0,
                                                   "protect": sorted(
                                                       set(protect))}}})
        assert a == b
        assert (CACHE.key_for(a.experiment, a.params)
                == CACHE.key_for(b.experiment, b.params))

    @given(seed=st.integers(0, 2**31))
    def test_defense_on_never_keys_as_defense_off(self, seed):
        on = cell_from_wire({"experiment": "defense-cell",
                             "params": {"workload": "sgx", "seed": seed,
                                        "defense": "prefence"}})
        off = cell_from_wire({"experiment": "defense-cell",
                              "params": {"workload": "sgx", "seed": seed,
                                         "defense": "none"}})
        key_on = CACHE.key_for(on.experiment, on.params)
        key_off = CACHE.key_for(off.experiment, off.params)
        assert key_on is not None and key_off is not None
        assert key_on != key_off

    def test_malformed_spec_fails_the_request(self):
        with pytest.raises(WireError, match="invalid value"):
            cell_from_wire({"experiment": "defense-cell",
                            "params": {"workload": "aes", "seed": 0,
                                       "defense": {"policy": "leash",
                                                   "windw_ns": 1}}})


# ----------------------------------------------------------------------
# Stack composition
# ----------------------------------------------------------------------
class _Deny(MitigationPolicy):
    name = "deny"

    def filter_wakeup_preempt(self, rq, curr, wakee, decision, now):
        return False


class _Record(MitigationPolicy):
    name = "record"

    def __init__(self):
        self.seen = []

    def filter_wakeup_preempt(self, rq, curr, wakee, decision, now):
        self.seen.append(decision)
        return decision

    def on_context_switch(self, cpu, prev, nxt, now):
        self.seen.append(("switch", cpu))


class TestStack:
    def test_build_stack_none_and_empty(self):
        assert build_stack(None) is None
        assert build_stack([]) is None
        assert build_stack(["none", None, "off"]) is None

    def test_build_stack_single_spellings(self):
        for spec in ("leash", {"policy": "leash"}, LeashPolicy()):
            stack = build_stack(spec)
            assert isinstance(stack, MitigationStack)
            assert stack.find("leash") is not None

    def test_existing_stack_passes_through(self):
        stack = build_stack("schedguard")
        assert build_stack(stack) is stack

    def test_filters_chain_in_order(self):
        recorder = _Record()
        stack = MitigationStack([_Deny(), recorder])
        out = stack.filter_wakeup_preempt(make_rq(), make_task("c"),
                                          make_task("w"), True, 0.0)
        assert out is False
        assert recorder.seen == [False]  # saw the upstream veto

    def test_observers_fan_out(self):
        a, b = _Record(), _Record()
        stack = MitigationStack([a, b])
        stack.on_context_switch(3, None, make_task("t"), 1.0)
        assert a.seen == [("switch", 3)] and b.seen == [("switch", 3)]

    def test_specs_snapshot_keyed_by_name(self):
        stack = build_stack(["leash", "schedguard"])
        assert [s["policy"] for s in stack.specs()] == ["leash", "schedguard"]
        assert set(stack.snapshot()) == {"leash", "schedguard"}


# ----------------------------------------------------------------------
# LEASH mechanics
# ----------------------------------------------------------------------
class TestLeash:
    def _leash(self):
        return LeashPolicy(window_ns=1_000.0, flag_threshold=3,
                           cooldown_windows=2, throttle_slice_ns=100.0,
                           vruntime_penalty_ns=1_000_000.0)

    def test_flags_after_threshold_in_one_window(self):
        leash = self._leash()
        rq, curr, atk = (make_rq(), make_task("victim", pid=1),
                         make_task("attacker", pid=2))
        for t in (10.0, 20.0, 30.0):
            assert leash.filter_wakeup_preempt(rq, curr, atk, True, t)
        assert not leash.flagged_pids  # flag lands at the boundary
        assert leash.filter_wakeup_preempt(rq, curr, atk, True, 1_100.0) is False
        assert atk.pid in leash.flagged_pids
        assert "attacker" in leash.flagged_names
        assert leash.denials == 1

    def test_flag_assesses_vruntime_penalty_once(self):
        leash = self._leash()
        rq, curr, atk = (make_rq(), make_task("victim", pid=1),
                         make_task("attacker", pid=2))
        for t in (10.0, 20.0, 30.0, 1_100.0):
            leash.filter_wakeup_preempt(rq, curr, atk, True, t)
        assert atk.vruntime == pytest.approx(atk.vruntime_delta(1_000_000.0))
        assert leash.penalties == 1

    def test_below_threshold_never_flags(self):
        leash = self._leash()
        rq, curr, w = (make_rq(), make_task("victim", pid=1),
                       make_task("benign", pid=3))
        for t in (100.0, 600.0, 1_200.0, 1_700.0, 2_300.0):
            assert leash.filter_wakeup_preempt(rq, curr, w, True, t)
        assert not leash.flagged_pids

    def test_unflags_after_quiet_horizon(self):
        leash = self._leash()
        rq, curr, atk = (make_rq(), make_task("victim", pid=1),
                         make_task("attacker", pid=2))
        for t in (10.0, 20.0, 30.0, 1_100.0):
            leash.filter_wakeup_preempt(rq, curr, atk, True, t)
        assert atk.pid in leash.flagged_pids
        # Quiet horizon = cooldown_windows × window = 2 µs past the last
        # attempt (1.1 µs): a tick roll well past it must release.
        leash.on_tick(rq, curr, 4_500.0)
        assert atk.pid not in leash.flagged_pids
        assert [k for _, k, _ in leash.events].count("unflag") == 1

    def test_residual_probing_stays_leashed(self):
        """The defense-killing regression: a denied attacker probing at
        its parked rate (one attempt per slice, several windows apart,
        each processed in a batched roll) must stay flagged."""
        leash = self._leash()
        rq, curr, atk = (make_rq(), make_task("victim", pid=1),
                         make_task("attacker", pid=2))
        for t in (10.0, 20.0, 30.0, 1_100.0):
            leash.filter_wakeup_preempt(rq, curr, atk, True, t)
        assert atk.pid in leash.flagged_pids
        # Attempts 1.5 windows apart — inside the 2-window horizon but
        # with whole quiet windows between them.
        for t in (2_600.0, 4_100.0, 5_600.0, 7_100.0):
            assert leash.filter_wakeup_preempt(rq, curr, atk, True, t) is False
        assert atk.pid in leash.flagged_pids

    def test_throttles_only_flagged_tasks(self):
        leash = self._leash()
        rq = make_rq(queued=(1,))
        atk, benign = make_task("attacker", pid=2), make_task("benign", pid=3)
        for t in (10.0, 20.0, 30.0, 1_100.0):
            leash.filter_wakeup_preempt(rq, make_task("v", pid=1), atk, True, t)
        atk.slice_exec = 200.0
        benign.slice_exec = 200.0
        assert leash.filter_tick_preempt(rq, atk, False, 1_200.0) is True
        assert leash.filter_tick_preempt(rq, benign, False, 1_200.0) is False
        assert leash.throttles == 1

    def test_no_throttle_when_queue_empty(self):
        leash = self._leash()
        rq = make_rq(queued=())
        atk = make_task("attacker", pid=2)
        for t in (10.0, 20.0, 30.0, 1_100.0):
            leash.filter_wakeup_preempt(rq, make_task("v", pid=1), atk, True, t)
        atk.slice_exec = 200.0
        assert leash.filter_tick_preempt(rq, atk, False, 1_200.0) is False


# ----------------------------------------------------------------------
# SchedGuard mechanics
# ----------------------------------------------------------------------
class TestSchedGuard:
    def test_slot_denies_both_preemption_kinds_until_expiry(self):
        guard = SchedGuardPolicy(slot_ns=500.0, protect=("victim",))
        rq = make_rq()
        victim, other = make_task("victim"), make_task("other")
        guard.on_context_switch(0, other, victim, 1_000.0)
        assert guard.filter_wakeup_preempt(rq, victim, other, True, 1_200.0) is False
        assert guard.filter_tick_preempt(rq, victim, True, 1_400.0) is False
        # Exactly at slot end: no longer protected (now < until).
        assert guard.filter_wakeup_preempt(rq, victim, other, True, 1_500.0) is True
        assert guard.slot_log == [(victim.pid, 1_000.0, 1_500.0)]
        assert guard.wakeup_denials == 1 and guard.tick_denials == 1

    def test_unprotected_current_is_untouched(self):
        guard = SchedGuardPolicy(slot_ns=500.0, protect=("victim",))
        rq = make_rq()
        victim, other = make_task("victim"), make_task("other")
        guard.on_context_switch(0, victim, other, 1_000.0)
        assert guard.filter_wakeup_preempt(rq, other, victim, True, 1_100.0) is True
        assert guard.slots_opened == 0

    def test_cgroup_matching_falls_back_to_name(self):
        guard = SchedGuardPolicy(protect=("secure",))
        grouped = make_task("anything")
        grouped.cgroup = "secure"
        named = make_task("secure")
        unrelated = make_task("other")
        assert guard._protected(grouped)
        assert guard._protected(named)
        assert not guard._protected(unrelated)

    def test_denial_preserves_false_decisions(self):
        guard = SchedGuardPolicy(slot_ns=500.0, protect=("victim",))
        rq, victim = make_rq(), make_task("victim")
        guard.on_context_switch(0, None, victim, 0.0)
        assert guard.filter_wakeup_preempt(rq, victim, make_task("w"),
                                           False, 100.0) is False
        assert guard.wakeup_denials == 0  # nothing to deny


# ----------------------------------------------------------------------
# PreFence mechanics
# ----------------------------------------------------------------------
class TestPreFence:
    def _machine(self, cores=2):
        return Machine(MachineConfig(n_cores=cores))

    def test_fence_always_disables_every_core_at_attach(self):
        machine = self._machine()
        policy = PreFencePolicy()
        policy.on_attach(SimpleNamespace(machine=machine))
        assert machine.hierarchy.prefetch_disabled == {0, 1}

    def test_selective_fencing_follows_switches(self):
        machine = self._machine()
        policy = PreFencePolicy(protect=("victim",))
        policy.on_attach(SimpleNamespace(machine=machine))
        assert machine.hierarchy.prefetch_disabled == set()
        victim, other = make_task("victim"), make_task("other")
        policy.on_context_switch(0, other, victim, 10.0)
        assert 0 in machine.hierarchy.prefetch_disabled
        policy.on_context_switch(0, victim, other, 20.0)
        assert 0 not in machine.hierarchy.prefetch_disabled
        assert policy.fences == 1 and policy.unfences == 1

    def test_hierarchy_suppresses_on_disabled_core(self):
        machine = self._machine()
        hierarchy = machine.hierarchy
        hierarchy.prefetch(0, 0x1000)
        assert hierarchy.prefetches_issued == 1
        hierarchy.prefetch_disabled.add(0)
        hierarchy.prefetch(0, 0x2000)
        assert hierarchy.prefetches_suppressed == 1
        assert hierarchy.prefetches_issued == 1
