"""In-process harness for the experiment-service test battery.

Runs a real :class:`repro.service.ExperimentService` — real asyncio
listener on an ephemeral loopback port, real worker pool — inside the
pytest process: the server's event loop lives on a daemon thread, the
test thread drives the synchronous client against it, and the service's
``service.*`` metrics land on the process-wide registry where
assertions can read them.

Fault injection goes through :data:`ServiceConfig.fault_plan` (a
callable the *test* supplies, so it can close over whatever state it
wants) plus the JSON-safe fault descriptors ``execute_cell``
understands: ``{"die": True}`` kills the worker process mid-cell,
``{"sleep_s": x}`` makes it slow.  Cache corruption is a plain
on-disk byte edit (:func:`corrupt_cache_entry`) — exactly what a torn
disk or a tampering tenant would produce.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Union

import repro.obs as obs_mod
from repro.experiments.wire import WireCell, cell_from_wire
from repro.parallel import derive_seed
from repro.service import ExperimentService, ServiceConfig
from repro.service import client as service_client
from repro.service.protocol import BatchResult

__all__ = [
    "ServiceHarness",
    "resolution_cells",
    "corrupt_cache_entry",
]


class ServiceHarness:
    """Context manager: a live service on an ephemeral loopback port.

    ``metrics=True`` (default) exports ``REPRO_METRICS=1`` *before* the
    worker pool exists, so worker processes inherit it and per-cell
    manifests carry metric snapshots; the tests' conftest restores the
    environment afterwards.
    """

    def __init__(self, *, metrics: bool = True, **config_kwargs: Any):
        self.config = ServiceConfig(**config_kwargs)
        self._metrics = metrics
        self.service: Optional[ExperimentService] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "ServiceHarness":
        if self._metrics:
            os.environ["REPRO_METRICS"] = "1"
            obs_mod.reset()
            obs_mod.get_obs()  # materialize the enabled registry now
        self.service = ExperimentService(self.config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="service-harness",
            daemon=True)
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.service.start(), self._loop).result(timeout=60)
        return self

    def stop(self) -> None:
        if self._loop is None:
            return
        if self.service is not None:
            asyncio.run_coroutine_threadsafe(
                self.service.drain(), self._loop).result(timeout=120)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "ServiceHarness":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    @property
    def host(self) -> str:
        return self.config.host

    def submit(self, cells: Iterable[Union[WireCell, Dict[str, Any]]],
               **kwargs: Any) -> BatchResult:
        return service_client.submit_batch(
            self.host, self.port, cells, **kwargs)

    def stats(self) -> Dict[str, Any]:
        return service_client.stats(self.host, self.port)

    def metric(self, name: str) -> Any:
        """Current value of one counter/gauge on the process registry
        (0 when the instrument never fired)."""
        registry = obs_mod.get_obs().metrics
        if name not in registry.names():
            return 0
        return registry.get(name).value

    def key_for(self, cell: WireCell) -> Optional[str]:
        assert self.service is not None and self.service.cache is not None
        return self.service.cache.key_for(cell.experiment, cell.params)


# ----------------------------------------------------------------------
# Cell builders / fixtures
# ----------------------------------------------------------------------
def resolution_cells(n: int, *, preemptions: int = 5, seed: int = 0,
                     tau0: float = 700.0,
                     scheduler: str = "cfs") -> List[WireCell]:
    """``n`` small, distinct, fast resolution cells.

    Each cell's seed derives from ``(seed, 'service-battery', i)`` —
    the same stable-identity scheme the parallel runner uses — so the
    same ``(n, seed)`` always names the same cells, and a serial
    ``starmap_kwargs`` run of the returned params is the ground truth
    a served batch must match bit-for-bit.
    """
    return [
        cell_from_wire({
            "experiment": "resolution",
            "params": {
                "tau": tau0 + 5.0 * i,
                "preemptions": preemptions,
                "scheduler": scheduler,
                "seed": derive_seed(seed, "service-battery", i),
            },
        })
        for i in range(n)
    ]


def corrupt_cache_entry(cache_dir: str, key: str) -> str:
    """Overwrite the tail of a stored entry with garbage (unpicklable
    → the cache must classify it ``corrupt`` and recompute)."""
    from repro.obs.cellcache import CellCache

    path = CellCache(cache_dir)._path(key)
    size = os.path.getsize(path)
    with open(path, "r+b") as fh:
        fh.seek(max(0, size - 16))
        fh.write(b"\xde\xad\xbe\xef" * 4)
    return path
