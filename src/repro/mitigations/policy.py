"""Pluggable scheduler-side mitigation policies.

The §6 mitigations shipped as *configuration* (feature flags, kernel
knobs).  The defenses PAPERS.md names — LEASH, SchedGuard, PreFence —
are *active policies*: they watch the schedule and intervene.  This
module gives them a common shape:

* :class:`MitigationPolicy` — the hook protocol.  The kernel consults
  an installed policy at exactly three points:

  - **preemption decision** (:meth:`~MitigationPolicy.filter_wakeup_preempt`
    / :meth:`~MitigationPolicy.filter_tick_preempt`): after the
    scheduling policy (Eq 2.2 / tick) has decided, the mitigation may
    veto or force the preemption;
  - **context switch** (:meth:`~MitigationPolicy.on_context_switch`):
    observed as the switch begins, before the next task runs;
  - **tick** (:meth:`~MitigationPolicy.on_tick`): the periodic
    scheduler tick, for windowed bookkeeping.

* :class:`MitigationStack` — an ordered composition.  Filters chain
  (each policy sees the previous decision), observers fan out.

* a registry + :func:`build_stack` / :func:`canonical_mitigation`, so a
  defense travels the experiment wire as plain JSON
  (``{"policy": "leash", "window_ns": 1e6, ...}``) and equal spellings
  canonicalize to one cell-cache key.

Policies are deliberately kernel-agnostic: the kernel only calls the
hooks when a stack is installed, so the default (no mitigations) path
is bit-identical to a kernel without this module.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "MitigationPolicy",
    "MitigationStack",
    "MITIGATION_POLICIES",
    "register_policy",
    "build_mitigation",
    "build_stack",
    "canonical_mitigation",
    "mitigation_name",
]


class MitigationPolicy:
    """Base class / protocol for scheduler-side defenses.

    Subclasses override the hooks they need; every hook defaults to a
    no-op that preserves the scheduler's decision.  ``rq``/``curr``/
    ``wakee`` are live kernel objects (:class:`repro.sched.runqueue.
    RunQueue`, :class:`repro.sched.task.Task`); ``now`` is simulated
    nanoseconds.
    """

    #: Registry name; subclasses must override.
    name: str = "mitigation"

    def on_attach(self, kernel: Any) -> None:
        """Called once when the kernel installs the policy."""

    def filter_wakeup_preempt(self, rq: Any, curr: Any, wakee: Any,
                              decision: bool, now: float) -> bool:
        """Veto/confirm a wakeup-preemption decision (Eq 2.2 already
        ran; ``decision`` is the scheduler's verdict)."""
        return decision

    def filter_tick_preempt(self, rq: Any, curr: Any,
                            decision: bool, now: float) -> bool:
        """Veto/force a tick-preemption decision."""
        return decision

    def on_context_switch(self, cpu: int, prev: Any, nxt: Any,
                          now: float) -> None:
        """A context switch to ``nxt`` is beginning on ``cpu``."""

    def on_tick(self, rq: Any, curr: Any, now: float) -> None:
        """Periodic scheduler tick on ``rq``'s CPU."""

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe counters/state for reporting."""
        return {}

    def spec(self) -> Dict[str, Any]:
        """The canonical wire spec that rebuilds this policy."""
        kwargs = getattr(self, "_canonical_kwargs", {})
        out: Dict[str, Any] = {"policy": self.name}
        out.update(kwargs)
        return out


class MitigationStack:
    """Ordered composition of mitigation policies.

    Decision filters chain in order — each policy receives the decision
    the previous one produced — and observation hooks fan out to every
    policy.  An empty stack is not built (:func:`build_stack` returns
    ``None``) so the kernel's fast path stays a single ``is None``
    check.
    """

    __slots__ = ("policies",)

    def __init__(self, policies: Iterable[MitigationPolicy]):
        self.policies: List[MitigationPolicy] = list(policies)

    def __iter__(self):
        return iter(self.policies)

    def __len__(self) -> int:
        return len(self.policies)

    def find(self, name: str) -> Optional[MitigationPolicy]:
        for policy in self.policies:
            if policy.name == name:
                return policy
        return None

    def on_attach(self, kernel: Any) -> None:
        for policy in self.policies:
            policy.on_attach(kernel)

    def filter_wakeup_preempt(self, rq: Any, curr: Any, wakee: Any,
                              decision: bool, now: float) -> bool:
        for policy in self.policies:
            decision = policy.filter_wakeup_preempt(rq, curr, wakee,
                                                    decision, now)
        return decision

    def filter_tick_preempt(self, rq: Any, curr: Any,
                            decision: bool, now: float) -> bool:
        for policy in self.policies:
            decision = policy.filter_tick_preempt(rq, curr, decision, now)
        return decision

    def on_context_switch(self, cpu: int, prev: Any, nxt: Any,
                          now: float) -> None:
        for policy in self.policies:
            policy.on_context_switch(cpu, prev, nxt, now)

    def on_tick(self, rq: Any, curr: Any, now: float) -> None:
        for policy in self.policies:
            policy.on_tick(rq, curr, now)

    def snapshot(self) -> Dict[str, Any]:
        return {policy.name: policy.snapshot() for policy in self.policies}

    def specs(self) -> List[Dict[str, Any]]:
        return [policy.spec() for policy in self.policies]


#: Registry of policy names → classes.  Concrete policies register at
#: import time (see :mod:`repro.mitigations.leash` et al.).
MITIGATION_POLICIES: Dict[str, type] = {}


def register_policy(cls: type) -> type:
    """Class decorator adding a policy class to the registry."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls!r} has no registry name")
    MITIGATION_POLICIES[name] = cls
    return cls


MitigationSpec = Union[None, str, Mapping[str, Any], MitigationPolicy]


def _ctor_params(cls: type) -> Dict[str, inspect.Parameter]:
    params: Dict[str, inspect.Parameter] = {}
    for pname, parameter in inspect.signature(cls).parameters.items():
        if parameter.kind in (inspect.Parameter.VAR_KEYWORD,
                              inspect.Parameter.VAR_POSITIONAL):
            continue
        params[pname] = parameter
    return params


def _canonical_kwargs(cls: type,
                      kwargs: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize constructor kwargs against the policy signature.

    Same rules as the wire (:func:`repro.experiments.wire.
    normalize_params`): defaults are filled in, ints coerce to float
    where the default is a float, unknown names are rejected.  String
    collections (tuple defaults like ``protect``) sort and dedupe so
    ``["b", "a", "a"]`` and ``("a", "b")`` key identically.
    """
    params = _ctor_params(cls)
    unknown = sorted(set(kwargs) - set(params))
    if unknown:
        raise ValueError(
            f"unknown kwarg(s) {unknown} for mitigation policy "
            f"{cls.name!r}; accepted: {sorted(params)}"
        )
    out: Dict[str, Any] = {}
    for pname, parameter in params.items():
        default = parameter.default
        if pname in kwargs:
            value = kwargs[pname]
        elif default is not inspect.Parameter.empty:
            value = default
        else:
            raise ValueError(
                f"missing required kwarg {pname!r} for mitigation "
                f"policy {cls.name!r}"
            )
        if (isinstance(default, float) and isinstance(value, int)
                and not isinstance(value, bool)):
            value = float(value)
        if isinstance(default, tuple) and isinstance(value, (list, tuple)):
            value = sorted({str(v) for v in value})
        out[pname] = value
    return out


def _split_spec(spec: MitigationSpec) -> Optional[Dict[str, Any]]:
    """Reduce any accepted spelling to ``{"policy": name, **kwargs}``
    with canonical kwargs, or ``None`` for the no-defense spellings."""
    if spec is None:
        return None
    if isinstance(spec, MitigationPolicy):
        return dict(spec.spec())
    if isinstance(spec, str):
        name, kwargs = spec, {}
    elif isinstance(spec, Mapping):
        payload = dict(spec)
        name = payload.pop("policy", None)
        if not isinstance(name, str) or not name:
            raise ValueError(
                f"mitigation spec {spec!r} is missing its 'policy' name"
            )
        kwargs = payload
    else:
        raise TypeError(
            f"mitigation spec must be None, a name, a dict, or a "
            f"MitigationPolicy; got {type(spec).__name__}"
        )
    if name in ("none", "off", "baseline"):
        if kwargs:
            raise ValueError(f"no-defense spec {name!r} takes no kwargs")
        return None
    cls = MITIGATION_POLICIES.get(name)
    if cls is None:
        raise ValueError(
            f"unknown mitigation policy {name!r}; "
            f"known: {sorted(MITIGATION_POLICIES)}"
        )
    out: Dict[str, Any] = {"policy": name}
    out.update(_canonical_kwargs(cls, kwargs))
    return out


def canonical_mitigation(spec: MitigationSpec) -> Optional[Dict[str, Any]]:
    """The canonical, JSON-safe form of a mitigation spec.

    ``None``/``"none"``/``"off"``/``"baseline"`` → ``None`` (so a
    defense-off cell can never share a key with any defense-on cell);
    everything else → ``{"policy": name, **full_kwargs}`` with every
    constructor default filled in, floats coerced, and string
    collections sorted — equal spellings dedupe to one cache key.
    """
    return _split_spec(spec)


def build_mitigation(spec: MitigationSpec) -> Optional[MitigationPolicy]:
    """Instantiate one policy from any accepted spec spelling."""
    if isinstance(spec, MitigationPolicy):
        return spec
    canonical = _split_spec(spec)
    if canonical is None:
        return None
    payload = dict(canonical)
    name = payload.pop("policy")
    cls = MITIGATION_POLICIES[name]
    return cls(**payload)


def build_stack(
    specs: Union[MitigationSpec, "MitigationStack",
                 Sequence[MitigationSpec]],
) -> Optional[MitigationStack]:
    """Build a :class:`MitigationStack` (or ``None`` for no defense).

    Accepts ``None``, a single spec in any spelling, an existing stack,
    or a sequence of specs.  An empty result is ``None`` so the kernel
    keeps its zero-cost default path.
    """
    if specs is None:
        return None
    if isinstance(specs, MitigationStack):
        return specs if len(specs) else None
    if isinstance(specs, (str, Mapping, MitigationPolicy)):
        specs = [specs]
    policies = [p for p in (build_mitigation(s) for s in specs)
                if p is not None]
    if not policies:
        return None
    return MitigationStack(policies)


def mitigation_name(spec: MitigationSpec) -> str:
    """Short display name for a spec (``"none"`` for no defense)."""
    canonical = _split_spec(spec)
    if canonical is None:
        return "none"
    return str(canonical["policy"])
