#!/usr/bin/env python3
"""Export the raw data behind every figure to plain text files.

Writes one whitespace-separated data file per figure under
``figures/`` so the plots can be regenerated with any tool (gnuplot,
matplotlib, pgfplots).  Sample counts follow REPRO_SCALE.

Run:  python examples/export_figure_data.py [output_dir]
"""

import os
import sys
from collections import Counter

from repro.experiments.preemption_count import figure_4_4, figure_4_5
from repro.experiments.resolution import figure_4_3, figure_4_7
from repro.experiments.noise import run_noise_experiment
from repro.experiments.setup import scaled


def write(path, header, rows):
    with open(path, "w") as handle:
        handle.write(f"# {header}\n")
        for row in rows:
            handle.write(" ".join(str(v) for v in row) + "\n")
    print(f"wrote {path} ({len(rows)} rows)")


def export_fig_4_3(outdir):
    panels = figure_4_3(preemptions_per_tau=scaled(80_000, minimum=300),
                        seed=1)
    for name, runs in panels.items():
        rows = []
        for run in runs:
            for value, count in sorted(Counter(run.samples).items()):
                rows.append((run.tau, value, count))
        write(os.path.join(outdir, f"fig_4_3{name}.dat"),
              "tau_ns instructions_retired count", rows)


def export_fig_4_4(outdir):
    runs = figure_4_4(repeats=3, seed=1)
    rows = [(r.drift_ns, r.preemptions, r.expected) for r in runs]
    write(os.path.join(outdir, "fig_4_4.dat"),
          "ia_minus_iv_ns preemptions expected", rows)


def export_fig_4_5(outdir):
    runs = figure_4_5(repeats=2, seed=1)
    rows = [(r.victim_nice, r.preemptions) for r in runs]
    write(os.path.join(outdir, "fig_4_5.dat"),
          "victim_nice preemptions", rows)


def export_fig_4_6(outdir):
    run = run_noise_experiment(rounds=scaled(4000, minimum=800), seed=1)
    rows = []
    for name, series in run.vruntime_series.items():
        for time, vruntime in series:
            rows.append((name, f"{time:.0f}", f"{vruntime:.0f}"))
    write(os.path.join(outdir, "fig_4_6.dat"),
          f"thread time_ns vruntime_ns (convergence at "
          f"{run.convergence_time:.0f})", rows)


def export_fig_4_7(outdir):
    runs = figure_4_7(preemptions_per_tau=scaled(80_000, minimum=300), seed=1)
    rows = []
    for run in runs:
        for value, count in sorted(Counter(run.samples).items()):
            rows.append((run.tau, value, count))
    write(os.path.join(outdir, "fig_4_7.dat"),
          "tau_ns instructions_retired count", rows)


def main(outdir="figures"):
    os.makedirs(outdir, exist_ok=True)
    export_fig_4_3(outdir)
    export_fig_4_4(outdir)
    export_fig_4_5(outdir)
    export_fig_4_6(outdir)
    export_fig_4_7(outdir)
    print("done.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "figures")
