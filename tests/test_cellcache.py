"""Content-addressed cell cache: correctness and identity guarantees.

The cache may only ever be an invisible accelerator: a warm run must be
digest-identical to a cold run for any ``jobs``, unsanitizable cells
must never be cache-keyed, corruption must read as a miss, and
``--no-cell-cache`` must force recomputation.
"""

from __future__ import annotations

import json
import os
import pickle

from repro.obs.cellcache import CACHE_ENV, CellCache, cell_cache
from repro.obs.manifest import result_digest, run_recorded
from repro.parallel import starmap_kwargs


def _cell(tau: float, seed: int) -> dict:
    """Deterministic stand-in for an experiment cell."""
    return {"tau": tau, "seed": seed, "value": tau * 3 + seed}


#: Call counter so tests can tell a served cell from a recomputed one.
_calls = {"n": 0}


def _counting_cell(tau: float, seed: int) -> dict:
    _calls["n"] += 1
    return _cell(tau, seed)


class TestKeying:
    def test_key_stable_and_param_sensitive(self, tmp_path):
        cache = CellCache(str(tmp_path))
        a = cache.key_for("repro.x:cell", {"tau": 740.0, "seed": 1})
        b = cache.key_for("repro.x:cell", {"tau": 740.0, "seed": 1})
        c = cache.key_for("repro.x:cell", {"tau": 741.0, "seed": 1})
        d = cache.key_for("repro.y:cell", {"tau": 740.0, "seed": 1})
        assert a == b
        assert len({a, c, d}) == 3

    def test_unsanitizable_kwargs_are_not_keyed(self, tmp_path):
        cache = CellCache(str(tmp_path))
        assert cache.key_for("repro.x:cell", {"cb": lambda: None}) is None
        assert cache.key_for("repro.x:cell",
                             {"nested": {"obj": object()}}) is None

    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert cell_cache() is None


class TestStoreFetch:
    def test_round_trip_preserves_digest(self, tmp_path):
        cache = CellCache(str(tmp_path))
        result = _cell(740.0, 1)
        key = cache.key_for("repro.x:cell", {"tau": 740.0, "seed": 1})
        cache.store(key, "repro.x:cell", result)
        hit, cached = cache.fetch(key)
        assert hit
        assert result_digest(cached) == result_digest(result)
        assert cache.digest_of(key) == result_digest(result)

    def test_absent_key_misses(self, tmp_path):
        cache = CellCache(str(tmp_path))
        assert cache.fetch("0" * 64) == (False, None)
        assert cache.digest_of("0" * 64) is None

    def test_corrupt_entry_is_a_miss_not_a_wrong_answer(self, tmp_path):
        cache = CellCache(str(tmp_path))
        key = cache.key_for("repro.x:cell", {"tau": 740.0, "seed": 1})
        cache.store(key, "repro.x:cell", _cell(740.0, 1))
        path = cache._path(key)
        # Tampered result: digest no longer matches.
        with open(path, "rb") as fh:
            entry = pickle.load(fh)
        entry["result"]["value"] = -1
        with open(path, "wb") as fh:
            pickle.dump(entry, fh)
        assert cache.fetch(key) == (False, None)
        # Truncated pickle: unreadable.
        with open(path, "wb") as fh:
            fh.write(b"\x80")
        assert cache.fetch(key) == (False, None)


class TestPipelineIntegration:
    CELLS = [{"tau": 440.0, "seed": 1}, {"tau": 830.0, "seed": 2}]

    def test_warm_equals_cold_for_any_jobs(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        _calls["n"] = 0
        cold = starmap_kwargs(_counting_cell, self.CELLS, jobs=1)
        assert _calls["n"] == 2
        warm_serial = starmap_kwargs(_counting_cell, self.CELLS, jobs=1)
        warm_pooled = starmap_kwargs(_counting_cell, self.CELLS, jobs=2)
        assert _calls["n"] == 2  # serial warm run computed nothing
        assert result_digest(warm_serial) == result_digest(cold)
        assert result_digest(warm_pooled) == result_digest(cold)

    def test_no_env_recomputes(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.delenv("REPRO_MANIFEST_DIR", raising=False)
        _calls["n"] = 0
        starmap_kwargs(_counting_cell, self.CELLS, jobs=1)
        starmap_kwargs(_counting_cell, self.CELLS, jobs=1)
        assert _calls["n"] == 4

    def test_run_recorded_hit_marks_manifest(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "cc"))
        out = str(tmp_path / "runs")
        params = dict(tau=740.0, degrade_itlb=True, preemptions=40, seed=3)
        _r1, m1, _ = run_recorded("resolution", params, out_dir=out)
        _r2, m2, _ = run_recorded("resolution", params, out_dir=out)
        assert m1.result_digest == m2.result_digest
        assert m1.metrics.get("cellcache.hit") is None
        assert m2.metrics.get("cellcache.hit") == 1


class TestCli:
    ARGS = ["--jobs", "1", "--seed", "3", "sweep", "--taus", "440,830",
            "--preemptions", "40"]

    @staticmethod
    def _digest(manifest_dir):
        (path,) = [p for p in os.listdir(manifest_dir)
                   if p.startswith("run-")]
        with open(os.path.join(manifest_dir, path)) as fh:
            data = json.load(fh)
        return data["result_digest"], data["metrics"].get("cellcache.hit")

    def test_cold_warm_and_escape_hatch(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        cc = str(tmp_path / "cc")
        assert main(["--manifest-dir", "a", "--cell-cache-dir", cc,
                     *self.ARGS]) == 0
        assert main(["--manifest-dir", "b", "--cell-cache-dir", cc,
                     *self.ARGS]) == 0
        assert main(["--manifest-dir", "c", "--cell-cache-dir", cc,
                     "--no-cell-cache", *self.ARGS]) == 0
        cold, cold_hit = self._digest(tmp_path / "a")
        warm, warm_hit = self._digest(tmp_path / "b")
        fresh, fresh_hit = self._digest(tmp_path / "c")
        assert cold == warm == fresh
        assert cold_hit is None and fresh_hit is None
        assert warm_hit == 1
        # Replay bypasses the cache and still verifies bit-identity.
        (manifest,) = [p for p in os.listdir(tmp_path / "a")
                       if p.startswith("run-")]
        assert main(["--no-manifest", "replay",
                     str(tmp_path / "a" / manifest)]) == 0

    def test_cached_digest_matches_recompute(self, tmp_path, monkeypatch):
        """The fuzz-smoke contract: a cached cell's stored digest equals
        a from-scratch recompute of the same cell."""
        from repro.experiments.resolution import run_resolution

        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        params = dict(tau=740.0, degrade_itlb=True, preemptions=40, seed=3)
        run_recorded("resolution", params)
        cache = cell_cache()
        key = cache.key_for("resolution", params)
        monkeypatch.delenv(CACHE_ENV, raising=False)
        fresh = run_resolution(**params)
        assert cache.digest_of(key) == result_digest(fresh)


class TestStatsAndPrune:
    def _populate(self, tmp_path, n):
        cache = CellCache(str(tmp_path))
        keys = []
        for i in range(n):
            key = cache.key_for("cell", {"i": i})
            cache.store(key, "cell", _cell(float(i), i))
            keys.append(key)
        return cache, keys

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache, _keys = self._populate(tmp_path, 3)
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["bytes"] > 0
        assert stats["oldest_mtime"] <= stats["newest_mtime"]

    def test_stats_empty_directory(self, tmp_path):
        cache = CellCache(str(tmp_path))
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["oldest_mtime"] is None

    def test_stats_skips_inflight_tmp_files(self, tmp_path):
        cache, _keys = self._populate(tmp_path, 1)
        (tmp_path / ".cell-xyz.tmp").write_bytes(b"partial")
        assert cache.stats()["entries"] == 1

    def test_prune_by_age(self, tmp_path):
        import time

        cache, keys = self._populate(tmp_path, 3)
        # Backdate the first two entries far past any cutoff.
        now = time.time()
        for key in keys[:2]:
            os.utime(cache._path(key), (now - 1000, now - 1000))
        outcome = cache.prune(500.0, now=now)
        assert outcome == {"removed": 2,
                           "removed_bytes": outcome["removed_bytes"],
                           "kept": 1}
        assert outcome["removed_bytes"] > 0
        assert cache.stats()["entries"] == 1
        hit, _result = cache.fetch(keys[2])
        assert hit

    def test_prune_keeps_young_entries(self, tmp_path):
        cache, keys = self._populate(tmp_path, 2)
        assert cache.prune(3600.0) == {"removed": 0, "removed_bytes": 0,
                                       "kept": 2}
        for key in keys:
            assert cache.fetch(key)[0]

    def test_fetch_counts_digest_verifies_and_bytes(self, tmp_path,
                                                    monkeypatch):
        import repro.obs as obs_mod

        cache, keys = self._populate(tmp_path, 1)
        observability = obs_mod.configure(metrics=True)
        try:
            assert cache.fetch(keys[0])[0]
            metrics = observability.metrics
            assert metrics.counter("cellcache.digest_verifies").value == 1
            assert metrics.counter("cellcache.bytes_read").value > 0
        finally:
            obs_mod.reset()
