"""Discrete-event simulation engine.

Everything in this reproduction — the scheduler, hardware timers, victim
instruction execution — is driven by a single simulated clock measured in
nanoseconds.  The engine is a plain event heap: callbacks scheduled at
absolute times, executed in time order with a deterministic tie-break.

Randomness is supplied by named, independently-seeded streams
(:class:`RngStreams`) so that every experiment is reproducible and so
that changing e.g. the number of context switches does not perturb the
plaintext randomness of an AES experiment.
"""

from repro.sim.engine import Event, EventHandle, Simulator
from repro.sim.rng import RngStreams

__all__ = ["Event", "EventHandle", "Simulator", "RngStreams"]
