"""Set-associative cache model with an inclusive shared LLC.

The hierarchy mirrors the evaluated i9-9900K:

* per-core L1I and L1D: 32 KiB, 8-way (64 sets)
* per-core unified L2: 256 KiB, 4-way (1024 sets)
* shared L3 (LLC): inclusive, 16-way; sized per
  :class:`HierarchyGeometry` (default scaled down from 16 MiB to keep
  simulations fast — set-index behaviour, which is all the attacks use,
  is preserved for any power-of-two set count)

Inclusivity matters: evicting a line from the LLC back-invalidates every
private copy, which is exactly the mechanism the paper's §5.2 attack
uses to both observe and *stall* the victim's instruction fetch from
another cache level.

Each set is an insertion-ordered dict of line addresses (LRU first, MRU
last): membership, recency update and LRU eviction are all O(1), where
the previous list representation paid an O(ways) scan-and-remove on
every hit — the hottest loop in the whole hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.uarch.address import CACHE_LINE_SIZE, line_addr
from repro.uarch.timing import LATENCY, LatencyModel

#: ``addr & _LINE_MASK == line_addr(addr)``; inlined in the hot paths.
_LINE_MASK = ~(CACHE_LINE_SIZE - 1)


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of one cache level."""

    n_sets: int
    n_ways: int
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        if self.n_sets & (self.n_sets - 1):
            raise ValueError(f"n_sets must be a power of two, got {self.n_sets}")
        if self.n_ways < 1:
            raise ValueError("n_ways must be >= 1")

    @property
    def size_bytes(self) -> int:
        return self.n_sets * self.n_ways * self.line_size

    def set_index(self, addr: int) -> int:
        """Cache set holding ``addr`` (physically-indexed approximation)."""
        return (addr // self.line_size) & (self.n_sets - 1)


@dataclass(frozen=True)
class HierarchyGeometry:
    """Shapes of all levels.  Defaults follow the i9-9900K, with the LLC
    set count reduced (same associativity) so that eviction-set
    experiments run quickly; attacks depend only on set indexing."""

    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry(64, 8))
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry(64, 8))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(1024, 4))
    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry(2048, 16))


class CacheLevel:
    """One set-associative, LRU cache level.

    Lines are identified by their line address.  Each set is an ordered
    dict of line addresses, most-recently-used last.
    """

    __slots__ = ("name", "geometry", "_sets", "hits", "misses", "evictions",
                 "_set_mask", "_line_size", "_n_ways")

    def __init__(self, name: str, geometry: CacheGeometry):
        self.name = name
        self.geometry = geometry
        # One preallocated bucket per set, indexed directly: a list
        # subscript beats the ``dict.get`` + None-check this used to do
        # on every access in the hottest loop of the hierarchy.
        self._sets: List[Dict[int, None]] = [{} for _ in range(geometry.n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Hoisted set-index math: the geometry is frozen, so the mask,
        # line size and associativity never change after construction.
        self._set_mask = geometry.n_sets - 1
        self._line_size = geometry.line_size
        self._n_ways = geometry.n_ways

    def lookup(self, addr: int, *, touch: bool = True,
               count_stats: bool = True) -> bool:
        """True if the line holding ``addr`` is resident.

        ``touch`` updates LRU order on hit (a probe that should not
        perturb recency can pass ``touch=False``).  ``count_stats=False``
        leaves the hit/miss counters alone — the prefetch path uses it
        so hardware-initiated fills never masquerade as demand accesses
        in channel-noise accounting.
        """
        line = addr & _LINE_MASK
        bucket = self._sets[(line // self._line_size) & self._set_mask]
        if line in bucket:
            if count_stats:
                self.hits += 1
            if touch:
                del bucket[line]
                bucket[line] = None
            return True
        if count_stats:
            self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        line = addr & _LINE_MASK
        return line in self._sets[(line // self._line_size) & self._set_mask]

    def fill(self, addr: int) -> Optional[int]:
        """Insert the line holding ``addr``; return the evicted line (or
        None).  Filling an already-resident line just refreshes LRU."""
        line = addr & _LINE_MASK
        bucket = self._sets[(line // self._line_size) & self._set_mask]
        if line in bucket:
            del bucket[line]
            bucket[line] = None
            return None
        victim = None
        if len(bucket) >= self._n_ways:
            victim = next(iter(bucket))
            del bucket[victim]
            self.evictions += 1
        bucket[line] = None
        return victim

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``.  Returns True if it was resident."""
        line = addr & _LINE_MASK
        bucket = self._sets[(line // self._line_size) & self._set_mask]
        if line in bucket:
            del bucket[line]
            return True
        return False

    def resident_lines(self, set_index: int) -> Tuple[int, ...]:
        """Lines currently resident in ``set_index`` (LRU → MRU order)."""
        return tuple(self._sets[set_index])

    def occupied_sets(self):
        """Yield ``(set_index, lines)`` for every non-empty set, lines
        in LRU → MRU order.  Read-only view for structural oracles."""
        for index, bucket in enumerate(self._sets):
            if bucket:
                yield index, tuple(bucket)

    def flush_all(self) -> None:
        for bucket in self._sets:
            bucket.clear()


class MemoryHierarchy:
    """Per-core private caches plus one shared inclusive LLC.

    ``access`` walks L1 → L2 → LLC → DRAM, fills every level on the way
    back and returns the load-to-use latency in cycles.  ``clflush``
    removes a line from the entire hierarchy (all cores), matching the
    x86 instruction the Flush+Reload receiver uses.
    """

    def __init__(
        self,
        n_cores: int,
        geometry: Optional[HierarchyGeometry] = None,
        latency: LatencyModel = LATENCY,
    ):
        self.geometry = geometry or HierarchyGeometry()
        self.latency = latency
        self.n_cores = n_cores
        self.l1i = [CacheLevel(f"L1I#{c}", self.geometry.l1i) for c in range(n_cores)]
        self.l1d = [CacheLevel(f"L1D#{c}", self.geometry.l1d) for c in range(n_cores)]
        self.l2 = [CacheLevel(f"L2#{c}", self.geometry.l2) for c in range(n_cores)]
        self.llc = CacheLevel("LLC", self.geometry.llc)
        # Hoisted load-to-use latencies (the model is frozen).
        self._l1_hit = latency.l1_hit
        self._l2_hit = latency.l2_hit
        self._llc_hit = latency.llc_hit
        self._dram = latency.dram

    # ------------------------------------------------------------------
    # Core access paths
    # ------------------------------------------------------------------
    def access(self, core: int, addr: int, kind: str = "data",
               *, count_stats: bool = True) -> int:
        """Load/fetch ``addr`` from ``core``; returns latency in cycles.

        ``kind`` is ``"data"`` or ``"inst"`` and selects the L1 slice.
        ``count_stats=False`` performs all fills and LRU updates but
        skips the hit/miss counters (prefetches, see :meth:`prefetch`).
        """
        l1 = self.l1d[core] if kind == "data" else self.l1i[core]
        if l1.lookup(addr, count_stats=count_stats):
            return self._l1_hit
        if self.l2[core].lookup(addr, count_stats=count_stats):
            l1.fill(addr)
            return self._l2_hit
        if self.llc.lookup(addr, count_stats=count_stats):
            self._fill_private(core, l1, addr)
            return self._llc_hit
        # DRAM: fill inclusive LLC first, back-invalidating on eviction.
        evicted = self.llc.fill(addr)
        if evicted is not None:
            self._back_invalidate(evicted)
        self._fill_private(core, l1, addr)
        return self._dram

    def prefetch(self, core: int, addr: int, kind: str = "inst") -> None:
        """Bring a line in without charging the requester (BTB-driven
        target prefetch, next-line prefetch).

        Prefetches move lines and recency exactly like demand accesses,
        but they are hardware-initiated: they must not count as demand
        hits/misses, or channel-noise accounting would blur the very
        statistic (§4.3) the attacks read."""
        self.access(core, addr, kind=kind, count_stats=False)

    def clflush(self, addr: int) -> None:
        """Flush one line from every cache in the system."""
        self.llc.invalidate(addr)
        for c in range(self.n_cores):
            self.l1i[c].invalidate(addr)
            self.l1d[c].invalidate(addr)
            self.l2[c].invalidate(addr)

    def is_cached_anywhere(self, addr: int) -> bool:
        """Presence probe used by tests and oracles (no side effects)."""
        if self.llc.contains(addr):
            return True
        return any(
            self.l1i[c].contains(addr)
            or self.l1d[c].contains(addr)
            or self.l2[c].contains(addr)
            for c in range(self.n_cores)
        )

    def flush_core_private(self, core: int) -> None:
        """Drop all private-cache state of one core (used by tests)."""
        self.l1i[core].flush_all()
        self.l1d[core].flush_all()
        self.l2[core].flush_all()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fill_private(self, core: int, l1: CacheLevel, addr: int) -> None:
        self.l2[core].fill(addr)
        l1.fill(addr)

    def _back_invalidate(self, line: int) -> None:
        """Inclusive LLC eviction: purge the line from all private caches."""
        for c in range(self.n_cores):
            self.l1i[c].invalidate(line)
            self.l1d[c].invalidate(line)
            self.l2[c].invalidate(line)
