"""Shared experiment scaffolding.

``build_env`` assembles a machine + kernel for one experiment run.  The
scheduler *parameters* always come from the paper's 16-core testbed
(Table 2.1) even when the simulated machine has one core — quiescent
single-core runs are how the paper characterizes the primitive, while
the sysctl values are fixed by the physical machine's core count.

``scaled`` applies the global experiment scale factor: benchmarks run
scaled-down sample counts by default; set ``REPRO_SCALE=1.0`` (or more)
for full-fidelity runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.cpu.machine import Machine, MachineConfig
from repro.kernel.costs import CostParams
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.tracing import KernelTracer
from repro.obs import Observability, get_obs
from repro.sched.base import SchedPolicy
from repro.sched.cfs import CfsScheduler
from repro.sched.eevdf import EevdfScheduler
from repro.sched.features import SchedFeatures
from repro.sched.params import SchedParams
from repro.sim.rng import RngStreams

#: The paper's testbed: a 16-core i9-9900K.
PAPER_CORE_COUNT = 16

_DEFAULT_SCALE = 0.05


def scale_factor() -> float:
    """Global experiment scale (fraction of the paper's sample counts).

    Controlled by ``REPRO_SCALE``; the default keeps the whole benchmark
    suite in CI-friendly time while preserving every distributional
    shape (the experiments are i.i.d. repetitions).
    """
    return float(os.environ.get("REPRO_SCALE", _DEFAULT_SCALE))


def scaled(full_count: int, minimum: int = 20) -> int:
    """Scale a paper sample count, keeping a statistically usable floor."""
    return max(minimum, int(full_count * scale_factor()))


@dataclass
class ExperimentEnv:
    """One assembled simulation environment."""

    machine: Machine
    kernel: Kernel
    policy: SchedPolicy
    params: SchedParams
    rng: RngStreams
    obs: Optional[Observability] = None

    @property
    def tracer(self) -> KernelTracer:
        return self.kernel.tracer

    @property
    def metrics(self):
        """The metrics registry this environment's kernel reports into."""
        return self.kernel.obs.metrics


def make_policy(
    scheduler: str,
    params: Optional[SchedParams] = None,
    features: Optional[SchedFeatures] = None,
) -> SchedPolicy:
    params = params or SchedParams.for_cores(PAPER_CORE_COUNT)
    if scheduler == "cfs":
        return CfsScheduler(params, features)
    if scheduler == "eevdf":
        return EevdfScheduler(params, features)
    raise ValueError(f"unknown scheduler {scheduler!r} (use 'cfs' or 'eevdf')")


def build_env(
    scheduler: str = "cfs",
    *,
    n_cores: int = 1,
    seed: int = 0,
    features: Optional[SchedFeatures] = None,
    params: Optional[SchedParams] = None,
    machine_config: Optional[MachineConfig] = None,
    kernel_config: Optional[KernelConfig] = None,
    cost_params: Optional[CostParams] = None,
    sample_vruntime: bool = False,
    obs: Optional[Observability] = None,
    max_trace_records: Optional[int] = None,
    mitigations=None,
) -> ExperimentEnv:
    """Assemble a fresh machine + kernel for one experiment run.

    ``obs`` overrides the process-wide observability hub for this
    environment (the default is :func:`repro.obs.get_obs`, configured by
    the CLI / environment variables).  ``max_trace_records`` bounds the
    KernelTracer streams for long characterization runs.

    ``mitigations`` installs scheduler-side defense policies: a
    :class:`~repro.mitigations.policy.MitigationStack`, a single policy,
    a wire spec (``"leash"`` / ``{"policy": ..., **kwargs}``), or a
    sequence of those.  ``None`` (the default) leaves the kernel's
    zero-cost path untouched.
    """
    machine = Machine(machine_config or MachineConfig(n_cores=n_cores))
    policy = make_policy(scheduler, params, features)
    rng = RngStreams(seed=seed)
    tracer = KernelTracer(sample_vruntime=sample_vruntime,
                          max_records=max_trace_records)
    if mitigations is not None:
        # Local import: the mitigations package re-exports experiment
        # evaluators, so a top-level import would be circular.
        from repro.mitigations.policy import build_stack
        mitigations = build_stack(mitigations)
    kernel = Kernel(
        machine,
        policy,
        rng,
        tracer=tracer,
        config=kernel_config,
        cost_params=cost_params,
        obs=obs,
        mitigations=mitigations,
    )
    return ExperimentEnv(
        machine=machine, kernel=kernel, policy=policy, params=policy.params,
        rng=rng, obs=obs if obs is not None else get_obs(),
    )
