"""Run manifests: every experiment run leaves a reproducible record.

A manifest is a small JSON file naming the experiment, its parameters
(including the seed and, for parallel cells, the derived seed), the
package version, wall time, a metrics snapshot, and a digest of the
result.  Because every experiment in this repo is a pure function of
``(params, seed)``, a manifest is sufficient to re-execute the run
bit-identically: :func:`replay` re-runs it and verifies the digest.

Two manifest kinds share the schema:

* **run manifests** — one per CLI/experiment invocation, written by
  :func:`run_recorded`;
* **cell manifests** — one per parallel trial, written by the process-
  pool runner (:mod:`repro.parallel`) inside the worker that executed
  the cell, so a sharded campaign leaves a complete provenance trail.

Experiment names resolve through :data:`EXPERIMENTS` (the CLI verbs) or
a ``module:qualname`` path restricted to this package, so replaying a
manifest never imports arbitrary code.
"""

from __future__ import annotations

import enum
import hashlib
import importlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

MANIFEST_SCHEMA = 1

#: Replayable experiment registry: CLI verb → (module, callable).
EXPERIMENTS: Dict[str, Tuple[str, str]] = {
    "resolution": ("repro.experiments.resolution", "run_resolution"),
    "sweep": ("repro.experiments.resolution", "tau_sweep"),
    "budget": ("repro.experiments.preemption_count", "run_budget_measurement"),
    "aes": ("repro.attacks.aes_first_round", "run_aes_accuracy_experiment"),
    "sgx": ("repro.attacks.sgx_base64", "run_sgx_pem_experiment"),
    "btb": ("repro.attacks.btb_gcd", "run_btb_accuracy_experiment"),
    "colocation": ("repro.experiments.colocation", "run_colocation"),
    "colocation-campaign": ("repro.experiments.colocation",
                            "run_colocation_campaign"),
    "mitigations": ("repro.experiments.mitigations", "evaluate_mitigations"),
    "defense-grid": ("repro.experiments.defense_grid", "run_defense_grid"),
    "defense-cell": ("repro.experiments.defense_grid", "run_defense_cell"),
}


def resolve_experiment(name: str) -> Callable[..., Any]:
    """Resolve a registry verb or a ``repro.*`` ``module:qualname``."""
    if name in EXPERIMENTS:
        module_name, attr = EXPERIMENTS[name]
    elif ":" in name:
        module_name, attr = name.split(":", 1)
    else:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)} "
            f"or a 'repro.module:function' path"
        )
    if not module_name.startswith("repro."):
        raise ValueError(f"refusing to import {module_name!r} (not repro.*)")
    fn = importlib.import_module(module_name)
    for part in attr.split("."):
        fn = getattr(fn, part)
    if not callable(fn):
        raise TypeError(f"{name!r} resolved to non-callable {fn!r}")
    return fn


def result_digest(result: Any) -> str:
    """Stable digest of an experiment result.

    Every experiment result here is a plain dataclass (or list of
    them) of ints/floats/strings/bytes, whose ``repr`` is canonical —
    float ``repr`` is exact in Python 3 — so hashing the repr captures
    bit-identity without a bespoke serializer per result type.
    """
    return hashlib.sha256(repr(result).encode()).hexdigest()


def _sanitize(value: Any) -> Any:
    """JSON-safe view of a parameter value (repr fallback)."""
    if isinstance(value, enum.Enum):
        # e.g. WakeupMethod — record the class path (repro.* only, see
        # _restore) and the member value.
        cls = type(value)
        return {"__enum__": f"{cls.__module__}:{cls.__qualname__}",
                "value": _sanitize(value.value)}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return {"__bytes__": value.hex()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    return {"__repr__": repr(value)}


def _restore(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        if set(value) == {"__enum__", "value"}:
            module_name, qual = value["__enum__"].split(":", 1)
            if not module_name.startswith("repro."):
                raise ValueError(f"refusing to import {module_name!r}")
            cls = importlib.import_module(module_name)
            for part in qual.split("."):
                cls = getattr(cls, part)
            return cls(_restore(value["value"]))
        if set(value) == {"__repr__"}:
            raise ValueError(
                f"parameter {value['__repr__']!r} is not replayable"
            )
        return {k: _restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore(v) for v in value]
    return value


@dataclass
class RunManifest:
    """One recorded experiment run (or parallel cell)."""

    experiment: str
    params: Dict[str, Any]
    seed: Optional[int] = None
    root_seed: Optional[int] = None
    kind: str = "run"  # 'run' | 'cell'
    version: str = ""
    python: str = ""
    platform: str = ""
    started_at: str = ""
    wall_time_s: float = 0.0
    result_digest: str = ""
    metrics: Dict[str, Any] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "kind": self.kind,
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.seed,
            "root_seed": self.root_seed,
            "version": self.version,
            "python": self.python,
            "platform": self.platform,
            "started_at": self.started_at,
            "wall_time_s": self.wall_time_s,
            "result_digest": self.result_digest,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in data.items() if k in known})

    def save(self, out_dir: str) -> str:
        """Write to ``out_dir`` under a deterministic name; returns the
        path."""
        os.makedirs(out_dir, exist_ok=True)
        tag = hashlib.sha256(
            json.dumps([self.experiment, self.params], sort_keys=True).encode()
        ).hexdigest()[:10]
        safe = self.experiment.replace(":", "_").replace(".", "_")
        name = f"{self.kind}-{safe}-s{self.seed}-{tag}.json"
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def load_manifest(path: str) -> RunManifest:
    with open(path) as fh:
        return RunManifest.from_dict(json.load(fh))


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def _package_version() -> str:
    try:
        from repro import __version__

        return __version__
    except Exception:
        return "unknown"


def _capture(experiment: str, params: Dict[str, Any], fn: Callable[[], Any],
             *, kind: str, root_seed: Optional[int] = None):
    """Time ``fn``, snapshot metrics, and build the manifest."""
    from repro.obs import get_obs

    obs = get_obs()
    started = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    t0 = time.perf_counter()
    result = fn()
    wall = time.perf_counter() - t0
    obs.publish()
    manifest = RunManifest(
        experiment=experiment,
        params={k: _sanitize(v) for k, v in params.items()},
        seed=params.get("seed") if isinstance(params.get("seed"), int) else None,
        root_seed=root_seed,
        kind=kind,
        version=_package_version(),
        python=platform.python_version(),
        platform=platform.platform(),
        started_at=started,
        wall_time_s=round(wall, 6),
        result_digest=result_digest(result),
        metrics=obs.metrics.snapshot() if obs.metrics.enabled else {},
    )
    return result, manifest


def run_recorded(
    experiment: str,
    params: Dict[str, Any],
    *,
    out_dir: Optional[str] = None,
    extra_kwargs: Optional[Dict[str, Any]] = None,
) -> Tuple[Any, RunManifest, Optional[str]]:
    """Run ``experiment(**params, **extra_kwargs)`` and record it.

    ``extra_kwargs`` are execution-only knobs (``jobs``, callbacks)
    that do not affect the result and are therefore excluded from the
    manifest — the recorded ``params`` alone must re-create the result.
    Returns ``(result, manifest, manifest_path_or_None)``.
    """
    fn = resolve_experiment(experiment)
    call = dict(params)
    if extra_kwargs:
        call.update(extra_kwargs)
    # Run-level cell cache: ``params`` alone determine the result (that
    # is the manifest contract — ``extra_kwargs`` are execution-only),
    # so the cache key deliberately excludes ``extra_kwargs`` and a
    # ``--jobs 8`` re-run hits the entry a serial run stored.
    cache = key = None
    if os.environ.get("REPRO_CELL_CACHE_DIR", "").strip():
        from repro.obs.cellcache import cell_cache

        cache = cell_cache()
        if cache is not None:
            key = cache.key_for(experiment, params)
            if key is not None:
                hit, result = cache.fetch(key)
                if hit:
                    manifest = RunManifest(
                        experiment=experiment,
                        params={k: _sanitize(v) for k, v in params.items()},
                        seed=(params.get("seed")
                              if isinstance(params.get("seed"), int) else None),
                        kind="run",
                        version=_package_version(),
                        python=platform.python_version(),
                        platform=platform.platform(),
                        started_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                        wall_time_s=0.0,
                        result_digest=result_digest(result),
                        metrics={"cellcache.hit": 1},
                    )
                    path = manifest.save(out_dir) if out_dir else None
                    return result, manifest, path
    result, manifest = _capture(
        experiment, params, lambda: fn(**call), kind="run"
    )
    if key is not None:
        cache.store(key, experiment, result)
    path = manifest.save(out_dir) if out_dir else None
    return result, manifest, path


def record_cell(fn: Callable[..., Any], kwargs: Dict[str, Any],
                out_dir: str) -> Any:
    """Run one parallel cell and drop its manifest in ``out_dir``.

    Called inside the worker process, so the manifest reflects the
    cell's own derived seed and the worker's metrics registry.
    """
    # The cell runs against a *fresh* metrics registry (folded back into
    # the process registry afterwards), so its manifest snapshots only
    # what this cell did.  Without the scope the snapshot would be the
    # worker's cumulative registry — a function of how the pool packed
    # cells onto workers — and cross-job telemetry aggregation
    # (:mod:`repro.obs.telemetry`) could never be ``--jobs``-invariant.
    from repro.obs.telemetry import cell_metrics_scope

    experiment = f"{fn.__module__}:{fn.__qualname__}"
    with cell_metrics_scope():
        result, manifest = _capture(
            experiment, kwargs, lambda: fn(**kwargs), kind="cell"
        )
    try:
        manifest.save(out_dir)
    except OSError:
        pass  # provenance must never fail the science
    return result


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def replay(manifest: RunManifest) -> Tuple[Any, bool]:
    """Re-execute a manifest's run serially and verify bit-identity.

    Returns ``(result, digest_matches)``.  The re-run derives
    everything from the recorded params — same seed, same code — so a
    digest mismatch means the environment (package version, code)
    diverged from the recording.
    """
    fn = resolve_experiment(manifest.experiment)
    params = {k: _restore(v) for k, v in manifest.params.items()}
    result = fn(**params)
    return result, result_digest(result) == manifest.result_digest
