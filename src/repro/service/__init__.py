"""``repro.service`` — the async experiment service.

Turns the CLI's one-shot experiment runner into something that can
absorb heavy overlapping traffic: an asyncio front-end (``repro
serve``) keyed on the manifest layer's content-addressed cell digests,
deduping submitted cells against both the persistent cell cache and
work already in flight, with a process worker pool as the execution
backend.  See docs/SERVICE.md for the wire format and the
dedupe/backpressure/retry/determinism contracts, and
``tests/service_harness.py`` for the in-process test harness.
"""

from repro.service.protocol import BatchResult, CellResult
from repro.service.server import (
    ExperimentService,
    InjectedTransportFailure,
    ServiceConfig,
)

__all__ = [
    "BatchResult",
    "CellResult",
    "ExperimentService",
    "InjectedTransportFailure",
    "ServiceConfig",
]
