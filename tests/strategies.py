"""Shared Hypothesis strategies for scheduler property tests.

One place to define "a plausible task mix" so every property file
exercises the same distribution — and widening it (e.g. to the full
nice range) widens every test at once.
"""

from hypothesis import strategies as st

MS = 1_000_000

#: Moderate nice values: the range real workloads live in.  Lists of
#: these make multi-task fairness mixes.
nice_moderate = st.integers(min_value=-10, max_value=10)
nice_values = st.lists(nice_moderate, min_size=2, max_size=5)

#: The full kernel range, including the ±extremes whose ~88× weight
#: ratio stresses every vruntime formula.
nice_full_range = st.integers(min_value=-20, max_value=19)
nice_extreme = st.sampled_from([-20, -19, 18, 19])

#: Root seeds for deterministic sub-generators (RngStreams etc.).
seeds = st.integers(min_value=0, max_value=2**16)

#: Attacker measurement padding in µs (the §4.1 budget knob).
attacker_padding_us = st.integers(min_value=6, max_value=60)

schedulers = st.sampled_from(["cfs", "eevdf"])

#: Positive execution charges at tick-ish granularity (ns).
charge_ns = st.floats(min_value=1_000.0, max_value=4 * MS,
                      allow_nan=False, allow_infinity=False)

#: One runqueue operation for stateful wake/sleep properties; the
#: interpretation (which task, how much charge) is up to the test.
rq_ops = st.lists(
    st.tuples(st.sampled_from(["wake", "sleep", "charge", "pick"]),
              st.integers(min_value=0, max_value=7),
              charge_ns),
    min_size=1, max_size=40,
)

#: Workload-generator seeds for fuzz-driven properties (small range so
#: Hypothesis shrinks toward the simplest failing mix).
workload_seeds = st.integers(min_value=0, max_value=127)

#: Named feature variants from the differential grid (see
#: repro.validate.workload.FEATURE_VARIANTS).  Listed literally so this
#: module stays import-light; test_migration_properties asserts the
#: list matches the source of truth.
FEATURE_VARIANT_NAMES = [
    "default",
    "no-gentle-sleepers",
    "no-wakeup-preemption",
    "min-slice-guard",
    "run-to-parity",
    "no-place-lag",
]
feature_variant_names = st.sampled_from(FEATURE_VARIANT_NAMES)
