"""Run-health telemetry: per-cell scoping, deterministic aggregation,
``telemetry.json`` and OpenMetrics export.

The metrics registry (:mod:`repro.obs.metrics`) answers "what happened
in this process"; this module answers "what happened in this *run*",
where a run may have fanned its cells out over any number of
:mod:`repro.parallel` workers.  Three pieces:

**Per-cell scoping** (:func:`cell_metrics_scope`).  Every simulated
quantity in this repo is a pure function of ``(params, seed)``, so a
cell's counters are as replayable as its result — but only if they are
*scoped to the cell*.  A process-wide registry accumulates across
whichever cells happen to share the process, which is exactly the
``--jobs``-dependent state the determinism contract forbids.  The scope
swaps a fresh enabled registry into the default :class:`Observability`
for the duration of one cell, snapshots it into the cell manifest, and
folds the numbers back into the parent registry afterwards (so
process-wide ``--metrics`` tables still show run totals).

**Deterministic aggregation** (:func:`aggregate_run_dir`,
:func:`write_telemetry`).  The per-cell snapshots recorded in the cell
manifests are merged — scalars summed, histograms bucket-summed — in
sorted-manifest-name order, which depends only on each cell's identity
(experiment, params, seed), never on pool scheduling.  The ``exact``
section of the resulting ``telemetry.json`` is therefore **bit-identical
for any ``--jobs``**; wall-clock quantities, which are genuinely
nondeterministic, are quarantined in a separate ``timing`` section as
percentiles.

**Export**.  :func:`render_openmetrics` dumps a registry in OpenMetrics
text format (``repro stats --format openmetrics``);
:func:`render_report` renders the human run-health report behind
``repro report <run-dir>`` (events/s, fast-forward coverage, cache hit
rates, per-phase timing, per-experiment summary).

Enabled by ``REPRO_TELEMETRY=1`` (the CLI's ``--telemetry`` exports it,
plus ``REPRO_METRICS=1`` so workers record snapshots at all).  Cells
served from the content-addressed cache are *not* re-simulated and
therefore contribute no counters; run the determinism check with the
cache off (the bundled test does).
"""

from __future__ import annotations

import glob
import json
import os
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "TELEMETRY_ENV",
    "TELEMETRY_SCHEMA",
    "TELEMETRY_FILENAME",
    "telemetry_enabled",
    "cell_metrics_scope",
    "merge_scalars",
    "merge_histograms",
    "percentile_summary",
    "aggregate_manifests",
    "aggregate_run_dir",
    "write_telemetry",
    "render_openmetrics",
    "render_report",
    "report_health",
]

TELEMETRY_ENV = "REPRO_TELEMETRY"
TELEMETRY_SCHEMA = 1
TELEMETRY_FILENAME = "telemetry.json"


def telemetry_enabled() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").strip().lower() in (
        "1", "true", "yes", "on")


# ----------------------------------------------------------------------
# Per-cell scoping
# ----------------------------------------------------------------------
def _fold_registry(parent: MetricsRegistry, cell: MetricsRegistry) -> None:
    """Fold one cell's instruments back into the parent registry.

    Counters add, gauges last-write-win, histograms bucket-merge — the
    same semantics a shared registry would have produced, so a serial
    ``--metrics`` table is unchanged by scoping.
    """
    if not parent.enabled:
        return
    for name in cell.names():
        metric = cell.get(name)
        if isinstance(metric, Counter):
            parent.counter(name).inc(metric.value)
        elif isinstance(metric, Histogram):
            parent.histogram(name, metric.bounds).merge(metric)
        elif isinstance(metric, Gauge):
            parent.gauge(name).set(metric.value)


@contextmanager
def cell_metrics_scope():
    """Swap a fresh enabled registry into the default observability for
    the duration of one cell.

    Yields the fresh registry (or None when metrics are disabled — the
    scope is then a no-op, preserving the null-instrument fast path).
    On exit the parent registry is restored and the cell's numbers are
    folded into it.
    """
    from repro.obs import get_obs

    obs = get_obs()
    parent = obs.metrics
    if not parent.enabled:
        yield None
        return
    fresh = MetricsRegistry(enabled=True)
    obs.metrics = fresh
    try:
        yield fresh
    finally:
        obs.metrics = parent
        _fold_registry(parent, fresh)


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
def _is_histogram_dict(value: Any) -> bool:
    return isinstance(value, dict) and "buckets" in value and "count" in value


def merge_scalars(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Key-wise sum of the scalar (counter/gauge) metrics.

    Ints stay ints; float accumulation happens in the order the
    snapshots are given, so callers wanting bit-identical output must
    order snapshots deterministically (aggregation sorts by manifest
    name)."""
    out: Dict[str, Any] = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            value = snapshot[name]
            if _is_histogram_dict(value) or not isinstance(value, (int, float)):
                continue
            if isinstance(value, bool):
                value = int(value)
            out[name] = out.get(name, 0) + value
    return {name: out[name] for name in sorted(out)}


def merge_histograms(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, dict]:
    """Bucket-wise merge of every histogram-valued metric."""
    out: Dict[str, dict] = {}
    for snapshot in snapshots:
        for name in sorted(snapshot):
            value = snapshot[name]
            if not _is_histogram_dict(value):
                continue
            merged = out.get(name)
            if merged is None:
                out[name] = {
                    "count": value["count"],
                    "sum": value["sum"],
                    "min": value["min"],
                    "max": value["max"],
                    "buckets": dict(value["buckets"]),
                }
                continue
            merged["count"] += value["count"]
            merged["sum"] += value["sum"]
            if value["min"] is not None and (
                    merged["min"] is None or value["min"] < merged["min"]):
                merged["min"] = value["min"]
            if value["max"] is not None and (
                    merged["max"] is None or value["max"] > merged["max"]):
                merged["max"] = value["max"]
            for bucket, count in value["buckets"].items():
                merged["buckets"][bucket] = (
                    merged["buckets"].get(bucket, 0) + count)
    for merged in out.values():
        merged["mean"] = (merged["sum"] / merged["count"]
                          if merged["count"] else 0.0)
    return {name: out[name] for name in sorted(out)}


def percentile_summary(values: Sequence[float]) -> Dict[str, Any]:
    """Nearest-rank percentile summary (deterministic for given values)."""
    if not values:
        return {"n": 0}
    ordered = sorted(values)
    n = len(ordered)

    def rank(p: float) -> float:
        index = max(0, min(n - 1, int(round(p / 100.0 * (n - 1)))))
        return ordered[index]

    return {
        "n": n,
        "total": round(sum(ordered), 6),
        "mean": round(sum(ordered) / n, 6),
        "p0": round(ordered[0], 6),
        "p50": round(rank(50), 6),
        "p90": round(rank(90), 6),
        "p100": round(ordered[-1], 6),
    }


# ----------------------------------------------------------------------
# Run-directory aggregation
# ----------------------------------------------------------------------
def _load_manifest_dicts(run_dir: str,
                         skipped: Optional[List[str]] = None
                         ) -> List[Tuple[str, dict]]:
    """``(basename, manifest_dict)`` pairs, sorted by basename.

    Manifest names are deterministic functions of the cell identity
    (experiment, params, seed), so this order is independent of pool
    scheduling and wall time.  Unreadable or truncated manifests are
    skipped — a partial run dir (crashed sweep, torn write) still
    aggregates — and, when ``skipped`` is given, reported into it."""
    pairs: List[Tuple[str, dict]] = []
    for kind in ("run", "cell"):
        for path in glob.glob(os.path.join(run_dir, f"{kind}-*.json")):
            try:
                with open(path) as fh:
                    data = json.load(fh)
            except (OSError, ValueError) as exc:
                if skipped is not None:
                    skipped.append(
                        f"skipped manifest {os.path.basename(path)}: {exc}")
                continue
            if isinstance(data, dict) and "experiment" in data:
                pairs.append((os.path.basename(path), data))
            elif skipped is not None:
                skipped.append(
                    f"skipped manifest {os.path.basename(path)}: "
                    "not a manifest object")
    pairs.sort(key=lambda pair: pair[0])
    return pairs


def aggregate_manifests(manifests: Sequence[dict]) -> dict:
    """Aggregate a sequence of manifest dicts into one telemetry dict.

    The counter source is the **cell** manifests when any exist (cells
    carry per-cell scoped registries, the deterministic unit); a run
    with no parallel cells falls back to its run manifests.  Wall-time
    statistics always cover every manifest.
    """
    cells = [m for m in manifests if m.get("kind") == "cell"]
    runs = [m for m in manifests if m.get("kind") != "cell"]
    source = cells if cells else runs
    snapshots = [m.get("metrics") or {} for m in source]
    wall = [m["wall_time_s"] for m in manifests
            if isinstance(m.get("wall_time_s"), (int, float))]
    experiments: Dict[str, int] = {}
    for m in manifests:
        name = m.get("experiment", "?")
        experiments[name] = experiments.get(name, 0) + 1
    versions = sorted({m.get("version", "") for m in manifests if
                       m.get("version")})
    return {
        "schema": TELEMETRY_SCHEMA,
        "version": versions[0] if len(versions) == 1 else versions,
        "cells": len(cells),
        "runs": len(runs),
        "counter_source": "cells" if cells else "runs",
        "experiments": {k: experiments[k] for k in sorted(experiments)},
        "exact": {
            "counters": merge_scalars(snapshots),
            "histograms": merge_histograms(snapshots),
        },
        "timing": {
            "wall_time_s": percentile_summary(wall),
        },
    }


def aggregate_run_dir(run_dir: str,
                      skipped: Optional[List[str]] = None) -> dict:
    """Aggregate every manifest under ``run_dir`` (non-recursive)."""
    pairs = _load_manifest_dicts(run_dir, skipped)
    telemetry = aggregate_manifests([data for _, data in pairs])
    telemetry["run_dir"] = os.path.basename(os.path.abspath(run_dir))
    return telemetry


def write_telemetry(run_dir: str, out_path: Optional[str] = None) -> str:
    """Write ``telemetry.json`` beside the run manifests; returns the
    path.  Keys are sorted so identical aggregates are identical bytes."""
    telemetry = aggregate_run_dir(run_dir)
    path = out_path or os.path.join(run_dir, TELEMETRY_FILENAME)
    with open(path, "w") as fh:
        json.dump(telemetry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# OpenMetrics export
# ----------------------------------------------------------------------
def _om_name(name: str) -> str:
    """Metric name sanitized to the OpenMetrics charset."""
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_"
        for ch in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _om_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_openmetrics(registry: MetricsRegistry) -> str:
    """The registry in OpenMetrics text format (counters get the
    mandated ``_total`` suffix, histograms classic ``le`` buckets)."""
    lines: List[str] = []
    for name in registry.names():
        metric = registry.get(name)
        om = _om_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {om} counter")
            lines.append(f"{om}_total {_om_value(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {om} gauge")
            lines.append(f"{om} {_om_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {om} histogram")
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(f'{om}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{om}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{om}_count {metric.count}")
            lines.append(f"{om}_sum {_om_value(metric.sum)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Run-health report
# ----------------------------------------------------------------------
def _ratio(numerator: float, denominator: float) -> Optional[float]:
    return numerator / denominator if denominator else None


def _fmt_pct(value: Optional[float]) -> str:
    return f"{value:.1%}" if value is not None else "n/a"


def _fmt_count(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:,.1f}"
    return f"{value:,}"


def _hit_rate(counters: Dict[str, Any], prefix: str) -> Optional[float]:
    hits = counters.get(f"{prefix}.hits", 0)
    misses = counters.get(f"{prefix}.misses", 0)
    return _ratio(hits, hits + misses)


def _shape_ok(telemetry: Any) -> bool:
    """Whether a loaded telemetry dict has the aggregate shape the
    report reads (truncated/corrupt files routinely do not)."""
    if not isinstance(telemetry, dict):
        return False
    exact = telemetry.get("exact", {})
    timing = telemetry.get("timing", {})
    return (isinstance(exact, dict)
            and isinstance(exact.get("counters", {}), dict)
            and isinstance(exact.get("histograms", {}), dict)
            and isinstance(timing, dict)
            and isinstance(timing.get("wall_time_s", {}), dict))


def report_health(run_dir: str) -> Tuple[str, List[str]]:
    """``(report_text, warnings)`` for ``repro report <run-dir>``.

    Degrades instead of tracebacking: a missing, truncated, or
    wrong-shaped ``telemetry.json`` falls back to aggregating the
    manifests on the fly, unreadable manifests are skipped, and every
    degradation is reported as a warning — a crashed sweep's run dir
    still yields the partial picture it can support.
    """
    warnings: List[str] = []
    telemetry: Optional[dict] = None
    path = os.path.join(run_dir, TELEMETRY_FILENAME)
    if os.path.exists(path):
        try:
            with open(path) as fh:
                loaded = json.load(fh)
            if not _shape_ok(loaded):
                raise ValueError("not a telemetry aggregate")
            telemetry = loaded
        except (OSError, ValueError) as exc:
            warnings.append(
                f"{TELEMETRY_FILENAME} unreadable ({exc}); "
                "re-aggregating from manifests")
    if telemetry is None:
        telemetry = aggregate_run_dir(run_dir, skipped=warnings)
    return render_report(run_dir, telemetry), warnings


def render_report(run_dir: str,
                  telemetry: Optional[dict] = None) -> str:
    """Human-readable run-health report for ``repro report <run-dir>``.

    Reads ``telemetry.json`` when present (or aggregates on the fly) and
    summarizes throughput, fast-forward coverage, cache behaviour,
    per-phase timing and the per-experiment manifest record.
    """
    if telemetry is None:
        text, _warnings = report_health(run_dir)
        return text
    counters = telemetry.get("exact", {}).get("counters", {})
    histograms = telemetry.get("exact", {}).get("histograms", {})
    wall = telemetry.get("timing", {}).get("wall_time_s", {})
    lines: List[str] = []
    out = lines.append
    out(f"run health — {telemetry.get('run_dir', run_dir)}")
    out(f"  manifests: {telemetry.get('runs', 0)} run(s), "
        f"{telemetry.get('cells', 0)} cell(s)  "
        f"[counters from {telemetry.get('counter_source', '?')}]")
    experiments = telemetry.get("experiments", {})
    if experiments:
        summary = ", ".join(f"{name}×{count}"
                            for name, count in experiments.items())
        out(f"  experiments: {summary}")

    # Throughput: simulated events over measured wall time.
    events = counters.get("sim.events_fired")
    total_wall = wall.get("total")
    out("")
    out("engine")
    if events is not None:
        out(f"  events fired        {_fmt_count(events)}")
        if total_wall:
            out(f"  events/s (wall)     {events / total_wall:,.0f}")
    compactions = counters.get("sim.heap_compactions")
    if compactions is not None:
        out(f"  heap compactions    {_fmt_count(compactions)}")

    retired = counters.get("cpu.instructions_retired")
    fast = counters.get("ff.insts_fast_forwarded")
    if retired is not None or fast is not None:
        out("")
        out("fast-forward")
        if retired:
            out(f"  instructions        {_fmt_count(retired)}")
        if fast is not None:
            out(f"  fast-forwarded      {_fmt_count(fast)}  "
                f"(coverage {_fmt_pct(_ratio(fast or 0, retired or 0))})")
        for key, label in (
            ("ff.windows.steady", "steady windows"),
            ("ff.windows.warmup", "warm-up windows"),
            ("ff.windows.periodic", "periodic windows"),
            ("ff.windows.loop", "loop windows"),
            ("ff.uniform_bulk_retires", "uniform bulk retires"),
            ("ff.periodic_fallbacks", "periodic fallbacks"),
            ("cpu.spec_early_outs", "speculation early-outs"),
        ):
            if key in counters:
                out(f"  {label:<19} {_fmt_count(counters[key])}")

    cache_keys = [k for k in counters if k.startswith("cellcache.")]
    uarch_rates = [(label, _hit_rate(counters, f"uarch.{label}"))
                   for label in ("l1i", "l1d", "l2", "llc", "itlb", "stlb")]
    uarch_rates = [(label, rate) for label, rate in uarch_rates
                   if rate is not None]
    if cache_keys or uarch_rates:
        out("")
        out("caches")
        for label, rate in uarch_rates:
            out(f"  {label:<6} hit rate     {_fmt_pct(rate)}")
        if cache_keys:
            hits = counters.get("cellcache.hits", 0)
            hits += counters.get("cellcache.hit", 0)
            misses = counters.get("cellcache.misses", 0)
            out(f"  cell cache          {hits} hit(s), {misses} miss(es), "
                f"{counters.get('cellcache.stores', 0)} store(s)")

    attack_keys = [k for k in sorted(counters) if k.startswith("attack.")]
    if attack_keys or "attack.preemptions_per_window" in histograms:
        out("")
        out("attack")
        for key in attack_keys:
            out(f"  {key.split('.', 1)[1]:<19} {_fmt_count(counters[key])}")
        window = histograms.get("attack.preemptions_per_window")
        if window and window.get("count"):
            out(f"  preemptions/window  mean {window['mean']:,.1f}  "
                f"min {window['min']:g}  max {window['max']:g}  "
                f"({window['count']} window(s))")
        for key in ("kernel.switch.preempt_wakeup", "kernel.migrations"):
            if key in counters:
                out(f"  {key:<19} {_fmt_count(counters[key])}")

    if wall.get("n"):
        out("")
        out("timing (wall clock, nondeterministic)")
        out(f"  cells timed         {wall['n']}")
        out(f"  total               {wall['total']:.3f} s")
        out(f"  p50/p90/p100        {wall['p50']:.3f} / {wall['p90']:.3f} / "
            f"{wall['p100']:.3f} s")
    if not counters and not wall.get("n"):
        out("")
        out("(no metrics recorded — run with --telemetry or --metrics "
            "so manifests carry counter snapshots)")
    return "\n".join(lines)
