"""Mitigation evaluation (§6).

Scheduler/system-level defences are evaluated with the same harness
the characterization uses, so their effect is directly comparable:

* ``NO_WAKEUP_PREEMPTION`` — the Linux security team's recommendation:
  the waking attacker cannot preempt mid-slice, so consecutive
  preemptions collapse to tick/S_min granularity.
* minimum scheduling interval (Varadarajan et al., applied to CFS) —
  wakeup preemption only lands after the victim has run a guaranteed
  slice, throttling the preemption *rate*.
* AEX-Notify (Constable et al.) — an SGX-side trusted prefetch handler
  guarantees the enclave makes significant progress per resume,
  destroying single-stepping while leaving coarse preemption intact.
* the active policies (:mod:`repro.mitigations` — LEASH, SchedGuard,
  PreFence) under the same single-stepping harness.  LEASH and
  SchedGuard attack the preemption count directly; PreFence does not
  (it blunts the prefetch *channel*, not the stepping — the row
  documents that honestly by matching the baseline).

Every cell is **plain data**: ``features``/``kernel_config`` travel as
kwargs dicts and ``mitigation`` as a canonical policy spec, so each
cell has a content-addressed cache key (live dataclass objects would
sanitize to an opaque ``repr`` and could never be cached or replayed)
and the ablation dedupes across runs and ``--jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.histogram import resolution_stats
from repro.core.primitive import ControlledPreemption, PreemptionConfig
from repro.cpu.program import StraightlineProgram
from repro.experiments.setup import build_env
from repro.kernel.kernel import KernelConfig
from repro.kernel.threads import ProgramBody
from repro.mitigations.policy import canonical_mitigation
from repro.parallel import starmap_kwargs
from repro.sched.features import SchedFeatures
from repro.sched.task import Task, TaskState
from repro.victims.sgx import make_enclave_task


@dataclass
class MitigationResult:
    name: str
    consecutive_preemptions: int
    median_instructions_per_preemption: float
    single_step_fraction: float


def _run(
    name: str,
    *,
    features: Optional[Dict[str, Any]] = None,
    kernel_config: Optional[Dict[str, Any]] = None,
    mitigation: Optional[Dict[str, Any]] = None,
    enclave: bool = False,
    rounds: int = 400,
    tau: float = 740.0,
    seed: int = 0,
    scheduler: str = "cfs",
) -> MitigationResult:
    env = build_env(
        scheduler, n_cores=1, seed=seed,
        features=SchedFeatures(**features) if features else None,
        kernel_config=KernelConfig(**kernel_config) if kernel_config else None,
        mitigations=mitigation,
    )
    program = StraightlineProgram()
    if enclave:
        victim = make_enclave_task("victim", program)
    else:
        victim = Task("victim", body=ProgramBody(program))
    attacker = ControlledPreemption(
        PreemptionConfig(
            nap_ns=tau,
            rounds=rounds,
            hibernate_ns=5e9,
            extra_compute_ns=12_000.0,
            stop_on_exhaustion=False,
        )
    )
    env.kernel.spawn(victim, cpu=0)
    attacker.launch(env.kernel, 0)
    env.kernel.run_until(
        predicate=lambda: attacker.task.state is TaskState.EXITED,
        max_time=30e9,
    )
    count = len(env.tracer.preemption_switches(attacker.task.pid))
    samples = env.tracer.retired_per_preemption(victim.pid, attacker.task.pid)[1:]
    if samples:
        stats = resolution_stats(samples)
        median = stats.median
        single = stats.single_fraction
    else:
        median, single = float("nan"), 0.0
    return MitigationResult(name, count, median, single)


_run.__wire_canonical__ = {  # type: ignore[attr-defined]
    "mitigation": canonical_mitigation,
}


def evaluate_mitigations(
    *, rounds: int = 400, seed: int = 0, jobs: Optional[int] = None
) -> List[MitigationResult]:
    """Baseline vs the §6 defences and the active policies.

    The cells share nothing (each builds its own environment from the
    same seed, exactly as the serial loop always did), so they fan out
    across the process pool and return in the fixed ablation order.
    """
    cells = [
        dict(name="baseline"),
        dict(name="no_wakeup_preemption",
             features=dict(wakeup_preemption=False)),
        dict(name="min_slice_1ms",
             features=dict(wakeup_min_slice_ns=1_000_000.0)),
        # EEVDF's RUN_TO_PARITY feature (real kernels ship it): a wakee
        # cannot preempt until the current task reaches its 0-lag
        # point — a built-in partial defence the CFS lacks.
        dict(name="eevdf_baseline", scheduler="eevdf"),
        dict(name="eevdf_run_to_parity", scheduler="eevdf",
             features=dict(run_to_parity=True)),
        # Active policies under the identical stepping harness.
        dict(name="leash", mitigation=canonical_mitigation("leash")),
        dict(name="schedguard", mitigation=canonical_mitigation("schedguard")),
        dict(name="prefence", mitigation=canonical_mitigation("prefence")),
        # SGX τ values re-tuned the way an attacker would: AEX +
        # ERESUME inflate the scheduling overhead, and AEX-Notify's
        # warm-up handler inflates it further.
        dict(name="sgx_baseline", enclave=True, tau=2690.0),
        dict(name="sgx_aex_notify", enclave=True, tau=4700.0,
             kernel_config=dict(aex_notify_depth=80)),
    ]
    for cell in cells:
        cell.update(rounds=rounds, seed=seed)
    return starmap_kwargs(_run, cells, jobs=jobs)
