"""``repro report`` degradation: partial run dirs still report.

A crashed sweep leaves whatever it leaves — truncated
``telemetry.json``, half-written manifests.  The report must render
the partial picture with warnings, and only ``--strict`` turns the
degradation into a nonzero exit.
"""

from __future__ import annotations

import json
import os

from repro.cli import main
from repro.obs.manifest import run_recorded
from repro.obs.telemetry import report_health, write_telemetry


def _run_dir_with_manifest(tmp_path):
    run_dir = str(tmp_path / "runs")
    run_recorded("resolution",
                 {"tau": 700.0, "preemptions": 5, "seed": 1},
                 out_dir=run_dir)
    return run_dir


class TestReportHealth:
    def test_intact_run_dir_reports_without_warnings(self, tmp_path):
        run_dir = _run_dir_with_manifest(tmp_path)
        write_telemetry(run_dir)
        text, warnings = report_health(run_dir)
        assert warnings == []
        assert "run-health report" in text or text  # renders something

    def test_truncated_telemetry_falls_back_to_manifests(self, tmp_path):
        run_dir = _run_dir_with_manifest(tmp_path)
        with open(os.path.join(run_dir, "telemetry.json"), "w") as fh:
            fh.write('{"exact": {"counters"')  # torn mid-write
        text, warnings = report_health(run_dir)
        assert any("telemetry.json" in w for w in warnings)
        assert text  # still a report, aggregated from the manifests

    def test_wrong_shaped_telemetry_is_degraded_not_fatal(self, tmp_path):
        run_dir = _run_dir_with_manifest(tmp_path)
        with open(os.path.join(run_dir, "telemetry.json"), "w") as fh:
            json.dump(["not", "a", "telemetry", "object"], fh)
        text, warnings = report_health(run_dir)
        assert warnings and text

    def test_unreadable_manifest_is_skipped_with_warning(self, tmp_path):
        run_dir = _run_dir_with_manifest(tmp_path)
        with open(os.path.join(run_dir, "cell-deadbeef.json"), "w") as fh:
            fh.write('{"experiment": "resolutio')  # torn manifest
        text, warnings = report_health(run_dir)
        assert any("cell-deadbeef.json" in w for w in warnings)
        assert text

    def test_missing_telemetry_with_no_manifests_still_reports(
            self, tmp_path):
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        text, warnings = report_health(empty)
        assert text  # empty aggregate renders, no traceback


class TestCliExitCodes:
    def test_degraded_report_exits_zero_by_default(self, tmp_path, capsys):
        run_dir = _run_dir_with_manifest(tmp_path)
        with open(os.path.join(run_dir, "telemetry.json"), "w") as fh:
            fh.write("{")
        assert main(["report", run_dir]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert captured.out  # partial report still printed

    def test_strict_turns_degradation_into_failure(self, tmp_path, capsys):
        run_dir = _run_dir_with_manifest(tmp_path)
        with open(os.path.join(run_dir, "telemetry.json"), "w") as fh:
            fh.write("{")
        assert main(["report", run_dir, "--strict"]) == 1
        captured = capsys.readouterr()
        assert captured.out  # the partial report is still rendered

    def test_strict_passes_on_an_intact_run_dir(self, tmp_path, capsys):
        run_dir = _run_dir_with_manifest(tmp_path)
        write_telemetry(run_dir)
        assert main(["report", run_dir, "--strict"]) == 0
        capsys.readouterr()
