"""The simulated machine: cores + shared memory system.

Defaults model the paper's testbed — a 16-logical-core i9-9900K
(SMT is outside the threat model, so every "core" here is an
independently scheduled logical CPU with private L1/L2/TLB/BTB and a
shared inclusive LLC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cpu.core import Core
from repro.uarch.btb import Btb
from repro.uarch.cache import HierarchyGeometry, MemoryHierarchy
from repro.uarch.timing import LATENCY, LatencyModel
from repro.uarch.tlb import TlbHierarchy


@dataclass(frozen=True)
class MachineConfig:
    """Knobs for the simulated hardware.

    ``spec_window`` is the number of instructions past an interrupt
    boundary whose memory effects may issue speculatively — the source
    of the Fig 5.1 smear.  Real out-of-order windows run to hundreds of
    instructions; a handful is enough to occasionally preview the next
    secret-dependent load.  LVI-fenced victims suppress it regardless.
    """

    n_cores: int = 16
    geometry: HierarchyGeometry = field(default_factory=HierarchyGeometry)
    latency: LatencyModel = LATENCY
    spec_window: int = 8
    btb_capacity: int = 4096


class Machine:
    """Cores plus the shared memory hierarchy."""

    def __init__(self, config: Optional[MachineConfig] = None):
        self.config = config or MachineConfig()
        cfg = self.config
        self.hierarchy = MemoryHierarchy(cfg.n_cores, cfg.geometry, cfg.latency)
        self.tlbs = TlbHierarchy(cfg.n_cores, cfg.latency)
        self.btbs = [Btb(cfg.btb_capacity) for _ in range(cfg.n_cores)]
        self.cores: List[Core] = [
            Core(c, self.hierarchy, self.tlbs, self.btbs[c], cfg.latency)
            for c in range(cfg.n_cores)
        ]

    @property
    def n_cores(self) -> int:
        return self.config.n_cores

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]
