"""Shared attack orchestration.

Every §5 exploit follows the same choreography:

1. the attacker thread starts, shrinks its timer slack and hibernates;
2. the victim process is invoked (threat model §3: the attacker starts
   the victim's execution) and performs its startup work — key/file
   loading, allocation — which is what advances the runqueue's
   min_vruntime and arms the full S_slack preemption budget;
3. the attacker wakes just as the victim enters the sensitive routine
   and begins the measure→nap loop.

Step 3's alignment is an offline-calibration problem in reality (same
binary, same quiescent machine ⇒ stable startup time).  In simulation
the calibration is exact: the harness reads the hibernation timer's
expiry after the attacker arms it and sizes the victim's startup phase
so the sensitive code begins right as the first preemption lands.
``victim_startup_ns`` must exceed S_slack (12 ms) so the budget is
fully charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.primitive import ControlledPreemption
from repro.cpu.isa import Instruction, InstrKind
from repro.cpu.program import Program, StraightlineProgram
from repro.experiments.setup import ExperimentEnv, build_env
from repro.kernel.threads import ProgramBody
from repro.sched.task import Task, TaskState
from repro.uarch.timing import CPU_FREQ_GHZ
from repro.victims.layout import VICTIM_TEXT_BASE

#: Startup phase of every attacked victim; must exceed S_slack so the
#: hibernated attacker wakes with the full preemption budget.
DEFAULT_STARTUP_NS = 16e6

#: Where the startup loop lives (away from the sensitive code).  Its 64
#: lines occupy LLC sets 128–191, clear of every monitored set.
STARTUP_TEXT_BASE = VICTIM_TEXT_BASE + 0x102000


#: Non-looping run of code executed right before the payload — the
#: landmark region the attacker's seek phase watches.  It must be longer
#: than one seek-nap of victim progress so the payload cannot be entered
#: undetected within a single seek round.
#: Tail lines occupy LLC sets from 256 upward — in particular the seek
#: landmark's set is untouched by the startup loop and the kernel
#: footprint, as a real attacker verifies when picking the landmark.
TAIL_TEXT_BASE = VICTIM_TEXT_BASE + 0x184000
DEFAULT_TAIL_INSTS = 2500


class PhasedProgram(Program):
    """A victim with startup, landmark tail, then the sensitive payload.

    * startup — a straight-line loop sized in wall time (the victim's
      key/file-loading work that charges the attacker's budget);
    * tail — a short non-looping stretch at a distinct code region (the
      final call path into the crypto routine), whose first line is the
      attacker's seek landmark;
    * payload — the traced sensitive routine.
    """

    def __init__(
        self,
        startup_ns: float,
        payload: Program,
        tail_insts: int = DEFAULT_TAIL_INSTS,
    ):
        super().__init__()
        startup_insts = max(0, int(startup_ns * CPU_FREQ_GHZ) - tail_insts)
        self.startup = StraightlineProgram(
            base_pc=STARTUP_TEXT_BASE, total=startup_insts
        )
        self.payload = payload
        self.startup_insts = startup_insts
        self.tail_insts = tail_insts
        self.tail_marker_addr = TAIL_TEXT_BASE

    @property
    def payload_start(self) -> int:
        return self.startup_insts + self.tail_insts

    def instruction_at(self, index: int) -> Optional[Instruction]:
        if index < self.startup_insts:
            return self.startup.instruction_at(index)
        if index < self.payload_start:
            offset = index - self.startup_insts
            return Instruction(pc=TAIL_TEXT_BASE + 4 * offset, kind=InstrKind.NOP)
        return self.payload.instruction_at(index - self.payload_start)

    def uniform_region_length(self, index: int) -> int:
        if index < self.startup_insts:
            return min(
                self.startup.uniform_region_length(index),
                self.startup_insts - index,
            )
        if index < self.payload_start:
            offset = index - self.startup_insts
            to_line_end = 16 - (offset % 16)
            if offset % 16 == 0:
                return 0  # line boundary fetches normally
            return min(to_line_end, self.payload_start - index)
        return self.payload.uniform_region_length(index - self.payload_start)

    def loop_profile(self, index: int):
        if index < self.startup_insts - self.startup.loop_insts:
            return self.startup.loop_profile(index)
        return None

    def steady_state(self, index: int):
        # Uniform only inside the startup spin; the final loop plus the
        # tail/payload always execute per-instruction (they are what the
        # attacker observes).
        limit = self.startup_insts - self.startup.loop_insts
        if index >= limit:
            return None
        state = self.startup.steady_state(index)
        if state is None:
            return None
        return state[0], limit - index

    @property
    def payload_retired(self) -> int:
        return max(0, self.retired - self.payload_start)

    @property
    def in_payload(self) -> bool:
        return self.retired >= self.payload_start


@dataclass
class AttackRun:
    """One synchronized victim run under attack."""

    env: ExperimentEnv
    victim: Task
    attacker: ControlledPreemption
    victim_program: PhasedProgram


def launch_synchronized_attack(
    attacker: ControlledPreemption,
    payload: Program,
    *,
    scheduler: str = "cfs",
    seed: int = 0,
    victim_task: Optional[Task] = None,
    startup_ns: float = DEFAULT_STARTUP_NS,
    align_margin_ns: float = 2_000.0,
    env: Optional[ExperimentEnv] = None,
    cpu: int = 0,
    mitigations=None,
) -> AttackRun:
    """Start attacker + victim with calibrated payload alignment.

    The attacker is spawned first; once its hibernation timer is armed
    the harness reads the exact wake time and spawns the victim so its
    startup phase ends ``align_margin_ns`` *after* the wake — i.e. the
    first few preemptions land at the very end of startup and the
    sensitive payload executes entirely under fine-grained stepping.
    """
    if env is None:
        env = build_env(scheduler, n_cores=1, seed=seed,
                        mitigations=mitigations)
    kernel = env.kernel
    attacker.launch(kernel, cpu)
    # Let the attacker run its prologue and arm the hibernation timer.
    kernel.run_until(
        predicate=lambda: any(
            t.task is attacker.task for t in kernel.cpus[cpu].timers
        ),
        max_time=kernel.now + 1e7,
    )
    timers = [t for t in kernel.cpus[cpu].timers if t.task is attacker.task]
    if not timers:
        raise RuntimeError("attacker failed to hibernate")
    wake_time = timers[0].expiry
    program = PhasedProgram(startup_ns, payload)
    if victim_task is None:
        victim_task = Task("victim", body=ProgramBody(program))
    else:
        victim_task.body = ProgramBody(
            program, spec_window=victim_task.body.spec_window
            if isinstance(victim_task.body, ProgramBody) else None
        )
    spawn_time = wake_time + align_margin_ns - startup_ns
    if spawn_time <= kernel.now:
        raise ValueError(
            "victim startup phase does not fit inside the hibernation; "
            "increase hibernate_ns or decrease startup_ns"
        )
    kernel.sim.call_at(spawn_time, lambda: kernel.spawn(victim_task, cpu=cpu))
    return AttackRun(env, victim_task, attacker, program)


def run_to_completion(run: AttackRun, *, max_ns: float = 30e9) -> None:
    """Advance until both the victim and the attacker finished."""
    run.env.kernel.run_until(
        predicate=lambda: (
            run.victim.state is TaskState.EXITED
            and run.attacker.task.state is TaskState.EXITED
        ),
        max_time=run.env.kernel.now + max_ns,
    )
