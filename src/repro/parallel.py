"""Process-pool experiment runner with deterministic seed derivation.

Every figure and table in this reproduction is the aggregate of many
*independent* simulation trials (τ-sweep cells, per-key attack runs,
repeated-preemption episodes) — the same embarrassingly parallel shape
as SGX-Step's 2²⁰-trial loops or REPTTACK's co-location campaigns.
This module fans those trials out over a process pool while keeping
results **bit-identical** to a serial run:

* each trial derives its own seed with :func:`derive_seed` from the
  root seed and a stable trial identity (never from pool scheduling
  order or worker id);
* each trial builds its entire environment (machine, kernel, RNG
  streams) from that seed inside the worker, so no state is shared;
* results are reassembled in submission order, regardless of which
  worker finished first.

``jobs`` semantics, everywhere in this repo:

* ``jobs=None`` — read ``REPRO_JOBS`` from the environment; unset means
  serial (libraries never surprise callers with a pool);
* ``jobs=0`` or negative — use ``os.cpu_count()``;
* ``jobs=1`` — serial in-process execution (no pool, no pickling);
* ``jobs>1`` — a :class:`concurrent.futures.ProcessPoolExecutor` with
  that many workers.

The CLI (`python -m repro --jobs N`) defaults to ``os.cpu_count()``.
"""

from __future__ import annotations

import hashlib
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "derive_seed",
    "resolve_jobs",
    "parallel_map",
    "starmap_kwargs",
    "starmap_completions",
    "map_payloads_completions",
    "run_trials",
    "SweepInterrupted",
]


class SweepInterrupted(RuntimeError):
    """A sweep stopped before completing every cell.

    Raised by :func:`starmap_completions` when its ``should_abort``
    callback turns true (SIGTERM/SIGINT handlers set exactly that
    flag) — *after* the completed cells were reported through
    ``on_result``, so a journaling caller has already durably recorded
    everything that finished.  ``completed`` counts those cells.
    """

    def __init__(self, message: str, completed: int = 0):
        super().__init__(message)
        self.completed = completed


class _Progress:
    """Live per-cell progress line on stderr (``--progress``).

    One ``\\r``-rewritten line: completed/total cells, throughput, and
    elapsed wall time.  Deliberately stderr so piped stdout output stays
    machine-readable.
    """

    def __init__(self, total: int):
        self.total = total
        self.done = 0
        self.start = time.perf_counter()

    def update(self, n: int = 1) -> None:
        self.done += n
        elapsed = time.perf_counter() - self.start
        rate = self.done / elapsed if elapsed > 0 else 0.0
        sys.stderr.write(
            f"\r[repro] {self.done}/{self.total} cells · "
            f"{rate:5.2f} cells/s · {elapsed:6.1f}s"
        )
        sys.stderr.flush()

    def finish(self) -> None:
        if self.done:
            sys.stderr.write("\n")
            sys.stderr.flush()


def _progress_enabled(progress: Optional[bool]) -> bool:
    if progress is not None:
        return progress
    return os.environ.get("REPRO_PROGRESS", "").strip() not in ("", "0", "false")


def derive_seed(root_seed: int, *identity: object) -> int:
    """Derive a 63-bit trial seed from ``root_seed`` and a stable identity.

    The identity is whatever names the trial — an index, a τ value, a
    panel letter — **not** anything about how or where it executes.
    Two properties matter:

    * deterministic: the same (root, identity) always yields the same
      seed, so parallel and serial schedules agree bit-for-bit;
    * independent: distinct identities yield unrelated seeds (SHA-256),
      so neighbouring trials do not share RNG structure the way
      ``seed + i`` schedules can.
    """
    material = "\x1f".join([repr(root_seed), *(repr(part) for part in identity)])
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a ``jobs`` argument to a concrete worker count (>= 1)."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return 1
        jobs = int(env)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def parallel_map(
    fn: Callable[[T], R], items: Sequence[T], *, jobs: Optional[int] = None,
    progress: Optional[bool] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    Results come back in input order whatever the completion order, so
    the output is indistinguishable from ``[fn(x) for x in items]`` as
    long as each call is self-contained (all our trial functions are:
    they build their own environment from their own seed).

    ``fn`` and every item must be picklable when ``jobs > 1`` (i.e. a
    module-level function and plain-data arguments).

    ``progress`` (or ``REPRO_PROGRESS=1``) renders a live completed/
    total + throughput line on stderr as cells finish.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    show = _progress_enabled(progress) and len(items) > 1
    if jobs <= 1 or len(items) <= 1:
        return _serial_map(fn, items, show)
    workers = min(jobs, len(items))
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if not show:
                return list(pool.map(fn, items, chunksize=1))
            # submit + as_completed so the progress line advances per
            # completion; results still reassemble in submission order.
            meter = _Progress(len(items))
            futures = [pool.submit(fn, item) for item in items]
            try:
                for _ in as_completed(futures):
                    meter.update()
            finally:
                meter.finish()
            return [f.result() for f in futures]
    except (OSError, PermissionError):
        # Sandboxes without fork/semaphore support degrade to serial —
        # same results, just slower.
        return _serial_map(fn, items, show)


def _serial_map(fn: Callable[[T], R], items: Sequence[T], show: bool) -> List[R]:
    if not show:
        return [fn(item) for item in items]
    meter = _Progress(len(items))
    results: List[R] = []
    try:
        for item in items:
            results.append(fn(item))
            meter.update()
    finally:
        meter.finish()
    return results


def _invoke_kwargs(payload: Any) -> Any:
    fn, kwargs = payload
    cache = key = None
    if os.environ.get("REPRO_CELL_CACHE_DIR", "").strip():
        # Content-addressed cell cache (repro.obs.cellcache): cells are
        # pure functions of their kwargs, so a key hit — same code
        # version, same experiment, same sanitized params — returns the
        # stored result without simulating.  Workers inherit the env
        # var, so serial and pooled schedules share one cache and a
        # warm run is digest-identical to a cold one for any ``jobs``.
        from repro.obs.cellcache import cell_cache

        cache = cell_cache()
        if cache is not None:
            key = cache.key_for(f"{fn.__module__}:{fn.__qualname__}", kwargs)
            if key is not None:
                hit, result = cache.fetch(key)
                if hit:
                    return result
    manifest_dir = os.environ.get("REPRO_MANIFEST_DIR", "").strip()
    if manifest_dir:
        # Runs inside pool workers too: workers inherit the env var, so
        # every parallel cell leaves the same manifest a serial cell
        # would.  Import is lazy to keep the pickling path light.
        from repro.obs.manifest import record_cell

        result = record_cell(fn, kwargs, manifest_dir)
    else:
        result = fn(**kwargs)
    if key is not None:
        cache.store(key, f"{fn.__module__}:{fn.__qualname__}", result)
    return result


def starmap_kwargs(
    fn: Callable[..., R],
    kwargs_list: Iterable[Dict[str, Any]],
    *,
    jobs: Optional[int] = None,
    progress: Optional[bool] = None,
) -> List[R]:
    """``[fn(**kw) for kw in kwargs_list]`` with optional parallelism.

    This is the shape every experiment sweep in :mod:`repro.experiments`
    reduces to: a list of per-cell keyword dictionaries (each carrying
    its own derived seed) applied to one module-level cell function.
    """
    payloads = [(fn, dict(kw)) for kw in kwargs_list]
    return parallel_map(_invoke_kwargs, payloads, jobs=jobs, progress=progress)


def _chaos_tick(completed: int) -> None:
    """``runner.tick`` injection point: consulted after every completed
    cell when a chaos schedule is active (no-op otherwise)."""
    if not os.environ.get("REPRO_CHAOS", "").strip():
        return
    from repro.chaos import ChaosAbort, chaos_point

    fault = chaos_point("runner.tick", completed=completed)
    if fault is None:
        return
    if fault["kind"] == "abort":
        raise ChaosAbort(f"chaos abort after {completed} completed cells")
    if fault["kind"] == "sigterm":
        import signal

        os.kill(os.getpid(), signal.SIGTERM)


def starmap_completions(
    fn: Callable[..., R],
    kwargs_list: Iterable[Dict[str, Any]],
    *,
    jobs: Optional[int] = None,
    progress: Optional[bool] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> List[R]:
    """:func:`starmap_kwargs`, but reporting cells in completion order.

    ``on_result(index, result)`` fires as each cell *finishes* —
    whatever order the pool finishes them in — which is exactly what a
    write-ahead journal needs: a crash between completions loses only
    in-flight cells.  Results still return in submission order, so the
    output remains bit-identical to the serial list comprehension.

    ``should_abort`` is polled between completions (signal handlers
    set a flag; this runner turns the flag into an orderly stop):
    pending cells are cancelled, the pool shuts down without waiting,
    and :class:`SweepInterrupted` carries the completed count.  An
    active chaos schedule's ``runner.tick`` point is consulted at the
    same cadence.
    """
    payloads = [(fn, dict(kw)) for kw in kwargs_list]
    return map_payloads_completions(
        payloads, jobs=jobs, progress=progress,
        on_result=on_result, should_abort=should_abort)


def map_payloads_completions(
    payloads: Sequence[Any],
    *,
    jobs: Optional[int] = None,
    progress: Optional[bool] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
    should_abort: Optional[Callable[[], bool]] = None,
) -> List[Any]:
    """:func:`starmap_completions` over explicit ``(fn, kwargs)``
    payloads — the form mixed-experiment sweeps need, where each cell
    names its own callable (cache/manifest identity stays the cell's
    own ``module:qualname``, never a shared dispatcher's).
    """
    payloads = [(fn_i, dict(kw)) for fn_i, kw in payloads]
    jobs = resolve_jobs(jobs)
    show = _progress_enabled(progress) and len(payloads) > 1
    results: List[Any] = [None] * len(payloads)
    meter = _Progress(len(payloads)) if show else None

    def finish_one(index: int, result: Any) -> None:
        results[index] = result
        if on_result is not None:
            on_result(index, result)
        if meter is not None:
            meter.update()

    completed = 0
    if jobs <= 1 or len(payloads) <= 1:
        try:
            for index, payload in enumerate(payloads):
                if should_abort is not None and should_abort():
                    raise SweepInterrupted(
                        f"sweep interrupted after {completed} cells",
                        completed)
                finish_one(index, _invoke_kwargs(payload))
                completed += 1
                _chaos_tick(completed)
        finally:
            if meter is not None:
                meter.finish()
        return results

    workers = min(jobs, len(payloads))
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
        probe = pool.submit(_invoke_kwargs, payloads[0])
        first = probe.result()
    except (OSError, PermissionError):
        # Sandboxes without fork/semaphore support degrade to serial —
        # same results, same journal, just slower.
        if meter is not None:
            meter.finish()
        return map_payloads_completions(
            payloads, jobs=1, progress=progress,
            on_result=on_result, should_abort=should_abort)
    try:
        finish_one(0, first)
        completed += 1
        _chaos_tick(completed)
        future_index = {
            pool.submit(_invoke_kwargs, payload): index
            for index, payload in enumerate(payloads[1:], start=1)
        }
        for future in as_completed(future_index):
            finish_one(future_index[future], future.result())
            completed += 1
            if should_abort is not None and should_abort():
                raise SweepInterrupted(
                    f"sweep interrupted after {completed} cells", completed)
            _chaos_tick(completed)
    except BaseException:
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        if meter is not None:
            meter.finish()
    pool.shutdown()
    return results


def run_trials(
    fn: Callable[..., R],
    n_trials: int,
    *,
    root_seed: int = 0,
    jobs: Optional[int] = None,
    seed_arg: str = "seed",
    identity: object = None,
    **common: Any,
) -> List[R]:
    """Run ``n_trials`` independent repetitions of one trial function.

    Trial ``i`` receives ``common`` plus
    ``seed_arg=derive_seed(root_seed, identity, i)``; results arrive in
    trial order.  This is the SGX-Step-style campaign primitive: many
    i.i.d. repetitions of one cell, differing only in their derived
    seed.
    """
    cells = [
        {**common, seed_arg: derive_seed(root_seed, identity, index)}
        for index in range(n_trials)
    ]
    return starmap_kwargs(fn, cells, jobs=jobs)
