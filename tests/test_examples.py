"""Smoke tests: the shipped examples must run and tell the story."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "consecutive preemptions achieved" in out
        assert "single-step rate" in out

    def test_colocation_demo(self, capsys):
        run_example("colocation_demo.py")
        out = capsys.readouterr().out
        assert "SUCCESS" in out

    def test_aes_example(self, capsys):
        run_example("aes_key_recovery.py", ["3"])
        out = capsys.readouterr().out
        assert "upper-nibble accuracy" in out

    def test_btb_example(self, capsys):
        run_example("btb_control_flow.py", ["2"])
        out = capsys.readouterr().out
        assert "branch accuracy" in out

    def test_budget_walkthrough(self, capsys):
        run_example("budget_walkthrough.py")
        out = capsys.readouterr().out
        assert "predicted" in out and "measured" in out

    def test_square_multiply_extension(self, capsys):
        run_example("rsa_square_multiply.py", ["3"])
        out = capsys.readouterr().out
        assert "bit accuracy" in out

    def test_export_figure_data(self, tmp_path):
        # Export only the cheap figures here; the full export is an
        # offline tool (the τ sweeps alone take minutes).
        import runpy

        module = runpy.run_path(str(EXAMPLES / "export_figure_data.py"))
        module["export_fig_4_6"](str(tmp_path))
        written = {p.name for p in tmp_path.iterdir()}
        assert "fig_4_6.dat" in written
        content = (tmp_path / "fig_4_6.dat").read_text().splitlines()
        assert content[0].startswith("#")
        assert len(content) > 100  # three vruntime series
