"""LLC Prime+Probe receiver (Liu et al.), used by the §5.2 SGX attack.

Unlike Flush+Reload this needs no shared memory — essential against an
SGX enclave whose memory cannot be mapped.  The attacker fills a target
LLC set with its own lines (*prime*); a victim access to any congruent
line evicts one of them (inclusively, from the attacker's private
caches too); timing the reload of the whole set (*probe*) reveals the
eviction as one or more slow loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.kernel import actions as act
from repro.uarch.cache import CacheGeometry
from repro.uarch.eviction import build_llc_eviction_set
from repro.uarch.timing import LATENCY, LatencyModel


def prime_probe_threshold(latency: LatencyModel = LATENCY) -> float:
    """Cycle threshold separating a victim-evicted line from probe
    artifacts.

    Against an SGX victim every preemption is an AEX that flushes the
    core TLB — including the attacker's huge-page translations — so the
    first probe access per 2 MiB region legitimately pays a page walk
    on top of its LLC hit (~walk+llc cycles).  A genuinely evicted line
    reads at DRAM latency or above; the threshold sits halfway between
    the two.
    """
    walk_artifact = latency.page_walk + latency.llc_hit
    return (walk_artifact + latency.dram) / 2


@dataclass
class ProbeResult:
    """Decoded probe of one set."""

    set_label: str
    misses: int
    total_latency: float

    @property
    def victim_touched(self) -> bool:
        return self.misses > 0


class PrimeProbeSet:
    """One monitored LLC set."""

    def __init__(
        self,
        label: str,
        eviction_addrs: Sequence[int],
        threshold: Optional[float] = None,
    ):
        if not eviction_addrs:
            raise ValueError("empty eviction set")
        self.label = label
        self.addrs = list(eviction_addrs)
        self.threshold = (
            threshold if threshold is not None else prime_probe_threshold()
        )

    @classmethod
    def for_target(
        cls,
        llc_geometry: CacheGeometry,
        label: str,
        target_addr: int,
        arena_base: int,
        extra_ways: int = 0,
    ) -> "PrimeProbeSet":
        """Build the set congruent to ``target_addr`` out of ``arena``.

        A *probe* set must hold exactly ``associativity`` lines: any
        more and the set evicts its own members, reading as a permanent
        false positive.  (Stall-only sets may over-provision; see
        :class:`repro.core.degradation.CodeLineStaller`.)"""
        addrs = build_llc_eviction_set(llc_geometry, target_addr, arena_base, extra_ways)
        return cls(label, addrs)

    def prime(self) -> Iterator[act.Action]:
        """Fill the set (two passes settle LRU the way real attacks do)."""
        for addr in self.addrs:
            yield act.Load(addr)
        for addr in self.addrs:
            yield act.Load(addr)
        return None

    def probe(self) -> Iterator[act.Action]:
        """Timed reload of the whole set; probing re-primes as it goes."""
        misses = 0
        total = 0.0
        for addr in self.addrs:
            latency = yield act.TimedLoad(addr)
            total += latency
            if latency > self.threshold:
                misses += 1
        return ProbeResult(self.label, misses, total)


class PrimeProbe:
    """Probe-then-prime measurer over several sets.

    ``measure()`` probes every set (decoding the victim's activity from
    the nap) and then re-primes them, returning the list of
    :class:`ProbeResult` in set order.
    """

    def __init__(self, sets: Sequence[PrimeProbeSet]):
        if not sets:
            raise ValueError("need at least one set")
        self.sets = list(sets)
        self._primed = False

    def measure(self) -> Iterator[act.Action]:
        if not self._primed:
            # Precondition round: the sets have never been primed, so a
            # probe would read pure garbage.  Prime and report nothing.
            for pp_set in self.sets:
                yield from pp_set.prime()
            self._primed = True
            return None
        results: List[ProbeResult] = []
        for pp_set in self.sets:
            result = yield from pp_set.probe()
            results.append(result)
        for pp_set in self.sets:
            yield from pp_set.prime()
        return results

    def prime_all(self) -> Iterator[act.Action]:
        for pp_set in self.sets:
            yield from pp_set.prime()
        return None
