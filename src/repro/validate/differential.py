"""Differential validation: one workload, many scheduler configurations.

Runs the *identical* workload under CFS and EEVDF and under the
feature-flag variants of :mod:`repro.sched.features`, asserting the
shared invariants in every configuration, and summarizing how the
policies *diverge* (switch counts, wakeup-preemption grants, per-task
CPU shares).  Divergence is reported, never failed: CFS and EEVDF are
*supposed* to schedule differently — that difference is the paper's
§4.5 subject — but both must stay inside the invariant envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.validate.harness import CaseOutcome, run_case
from repro.validate.workload import (
    FEATURE_VARIANTS,
    WorkloadSpec,
    generate_workload,
)

__all__ = ["ConfigResult", "DifferentialReport", "run_differential"]

#: (scheduler, variant) grid exercised by default.  EEVDF-only flags
#: are skipped on CFS and vice versa.
DEFAULT_GRID: Tuple[Tuple[str, str], ...] = (
    ("cfs", "default"),
    ("cfs", "no-gentle-sleepers"),
    ("cfs", "no-wakeup-preemption"),
    ("cfs", "min-slice-guard"),
    ("eevdf", "default"),
    ("eevdf", "run-to-parity"),
    ("eevdf", "no-place-lag"),
)


@dataclass(frozen=True)
class ConfigResult:
    """One (scheduler, feature-variant) run of the shared workload."""

    scheduler: str
    variant: str
    outcome: CaseOutcome


@dataclass(frozen=True)
class DifferentialReport:
    seed: int
    results: Tuple[ConfigResult, ...]
    #: Human-readable policy-divergence lines (cfs vs eevdf defaults).
    divergence: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return all(r.outcome.ok for r in self.results)

    def violating(self) -> Tuple[ConfigResult, ...]:
        return tuple(r for r in self.results if not r.outcome.ok)


def _divergence_summary(by_config: Dict[Tuple[str, str], CaseOutcome]
                        ) -> Tuple[str, ...]:
    cfs = by_config.get(("cfs", "default"))
    eevdf = by_config.get(("eevdf", "default"))
    if cfs is None or eevdf is None:
        return ()
    lines = [
        f"switches: cfs={cfs.n_switches} eevdf={eevdf.n_switches}",
        f"wakeup-preempt grants: cfs={cfs.n_preempt_grants} "
        f"eevdf={eevdf.n_preempt_grants} "
        f"(of {cfs.n_wakeups}/{eevdf.n_wakeups} wakeups)",
    ]
    cfs_rt = dict(cfs.per_task_runtime)
    eevdf_rt = dict(eevdf.per_task_runtime)
    total_cfs = sum(cfs_rt.values()) or 1.0
    total_eevdf = sum(eevdf_rt.values()) or 1.0
    for pid in sorted(cfs_rt):
        share_c = cfs_rt[pid] / total_cfs
        share_e = eevdf_rt.get(pid, 0.0) / total_eevdf
        if abs(share_c - share_e) > 0.02:
            lines.append(
                f"pid{pid} CPU share: cfs={share_c:.1%} eevdf={share_e:.1%}")
    return tuple(lines)


def run_differential(
    seed: int = 0,
    *,
    cpus: int = 2,
    max_tasks: int = 6,
    spec: Optional[WorkloadSpec] = None,
    grid: Tuple[Tuple[str, str], ...] = DEFAULT_GRID,
    bug: Optional[str] = None,
) -> DifferentialReport:
    """Run one workload across the scheduler/feature grid.

    The workload's own feature draw is overridden per grid entry so
    every configuration sees the *same* task mix.
    """
    if spec is None:
        spec = generate_workload(seed, n_cpus=cpus, max_tasks=max_tasks,
                                 feature_variants=False)
    results = []
    by_config: Dict[Tuple[str, str], CaseOutcome] = {}
    for scheduler, variant in grid:
        features = FEATURE_VARIANTS[variant]
        configured = replace(spec, features=dict(features))
        outcome = run_case(configured, scheduler, bug=bug)
        by_config[(scheduler, variant)] = outcome
        results.append(ConfigResult(scheduler, variant, outcome))
    return DifferentialReport(
        seed=spec.seed,
        results=tuple(results),
        divergence=_divergence_summary(by_config),
    )
