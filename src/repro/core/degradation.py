"""Performance degradation (§4.3 "Combining ... with performance
degradation" and the §5.2 instruction-stall trick).

Slowing the victim's *first* post-preemption instruction widens the
window in which exactly one instruction retires, converting zero steps
into single steps.  Two degraders are provided:

* :class:`TlbEvictor` — evicts the victim code page's translation from
  both the L1 iTLB and the unified STLB using Gras-et-al-style eviction
  sets (executing a NOP from each congruent attacker page).  The
  victim's next fetch pays a full page walk.
* :class:`CodeLineStaller` — primes the LLC set congruent to a chosen
  victim *instruction* line.  Inclusivity back-invalidates the line
  from every private cache, so the victim's next fetch of that line
  goes to DRAM — usable both to stall the victim (larger usable τ) and,
  dual-purposed, as the Prime+Probe set that detects the fetch (§5.2).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.cpu.isa import Instruction, InstrKind
from repro.kernel import actions as act
from repro.uarch.cache import CacheGeometry
from repro.uarch.eviction import build_llc_eviction_set, build_tlb_eviction_set
from repro.uarch.tlb import TlbHierarchy


class TlbEvictor:
    """Evict the victim code page's iTLB and STLB entries each round."""

    def __init__(self, victim_code_addr: int, arena_base: int):
        self.victim_code_addr = victim_code_addr
        self.itlb_pages = build_tlb_eviction_set(
            TlbHierarchy.ITLB, victim_code_addr, arena_base
        )
        self.stlb_pages = build_tlb_eviction_set(
            TlbHierarchy.STLB, victim_code_addr, arena_base + (1 << 30)
        )
        # The eviction set never changes, so the actions are built once:
        # rebuilding ~20 frozen Instruction records every preemption
        # round used to dominate the degraded hot path.
        self._actions = tuple(
            act.ExecInst(Instruction(pc=page_addr, kind=InstrKind.NOP))
            for page_addr in self.itlb_pages + self.stlb_pages
        )

    def degrade(self) -> Iterator[act.Action]:
        """Execute one NOP from each congruent page.

        Instruction fetches fill the attacker's translations into both
        TLB levels, displacing the victim's entry by set contention.
        """
        # Must stay a generator: the kernel ``send()``s action results
        # back into the consuming body.
        for action in self._actions:
            yield action

    @property
    def pages_touched(self) -> int:
        return len(self.itlb_pages) + len(self.stlb_pages)


class CodeLineStaller:
    """Prime the LLC set of a victim instruction line (miss-stall it)."""

    def __init__(
        self,
        llc_geometry: CacheGeometry,
        victim_inst_addr: int,
        arena_base: int,
        extra_ways: int = 2,
    ):
        self.victim_inst_addr = victim_inst_addr
        self.eviction_set: List[int] = build_llc_eviction_set(
            llc_geometry, victim_inst_addr, arena_base, extra_ways
        )
        self._actions = tuple(act.Load(addr) for addr in self.eviction_set)

    def degrade(self) -> Iterator[act.Action]:
        """Touch every line of the eviction set, filling the LLC set and
        (by inclusion) purging the victim's line from all caches."""
        for action in self._actions:
            yield action


class CompositeDegrader:
    """Run several degraders in sequence each round."""

    def __init__(self, *degraders):
        self.degraders = degraders

    def degrade(self) -> Iterator[act.Action]:
        for degrader in self.degraders:
            yield from degrader.degrade()
