#!/usr/bin/env python3
"""Quickstart: one Controlled Preemption episode, start to finish.

Builds a single-core machine running the Linux CFS (with the paper's
16-core sysctl values), pins a straight-line victim and one attacker
thread to it, and lets the attacker hibernate → preempt → nap its way
through the preemption budget.  Prints the two headline properties of
the primitive: how many consecutive preemptions one thread gets, and
how few victim instructions retire between them.

Run:  python examples/quickstart.py
"""

from repro import (
    ControlledPreemption,
    PreemptionConfig,
    ProgramBody,
    StraightlineProgram,
    Task,
    build_env,
    expected_preemptions,
)
from repro.analysis import ascii_histogram, resolution_stats
from repro.core.degradation import TlbEvictor
from repro.victims.layout import ATTACKER_TLB_ARENA


def main() -> None:
    env = build_env("cfs", n_cores=1, seed=42)

    # The victim: an endless loop of same-size instructions, as in §4.3.
    program = StraightlineProgram()
    victim = Task("victim", body=ProgramBody(program))
    env.kernel.spawn(victim, cpu=0)

    # The attacker: hibernate 5 s, then preempt every τ = 740 ns,
    # evicting the victim's iTLB entry before each nap so most
    # preemptions land after exactly one victim instruction (§4.3b).
    attacker = ControlledPreemption(
        PreemptionConfig(nap_ns=740.0, rounds=600, stop_on_exhaustion=True),
        degrader=TlbEvictor(program.base_pc, ATTACKER_TLB_ARENA),
    )
    attacker.launch(env.kernel, cpu=0)

    env.kernel.run_until(
        predicate=lambda: env.kernel.task_exited(attacker.task),
        max_time=10e9,
    )

    tracer = env.tracer
    count = tracer.consecutive_preemptions(victim.pid, attacker.task.pid)
    samples = tracer.retired_per_preemption(victim.pid, attacker.task.pid)[1:]
    stats = resolution_stats(samples)

    print("Controlled Preemption quickstart")
    print("=" * 48)
    print(f"scheduler params: S_slack={env.params.s_slack/1e6:.0f} ms, "
          f"S_preempt={env.params.s_preempt/1e6:.0f} ms "
          f"(budget {env.params.preemption_budget/1e6:.0f} ms)")
    print(f"consecutive preemptions achieved: {count}")
    print(f"(the ⌈budget/(Ia−Iv)⌉ model predicts "
          f"{expected_preemptions(env.params, 5_000, 0)} at Ia−Iv = 5 µs)")
    print()
    print("victim instructions retired per preemption:")
    print(ascii_histogram(samples))
    print()
    print(f"summary: {stats.describe()}")
    print(f"single-step rate: {stats.single_fraction:.0%}")


if __name__ == "__main__":
    main()
