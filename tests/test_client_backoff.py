"""Client backpressure behaviour: seeded jitter and the deadline cap.

The resubmit sleep must be a pure function of ``(jitter_seed,
attempt)`` — replayable, fleet-de-herding — and ``deadline_s`` must
bound the whole resubmit loop rather than letting a large
``retry_after_s`` hint park the client indefinitely.
"""

from __future__ import annotations

import time

import pytest

from repro.service.client import Backpressure, backoff_sleep_s, submit_batch
from tests.service_harness import ServiceHarness, resolution_cells

pytestmark = pytest.mark.service


class TestBackoffSleep:
    def test_pure_function_of_seed_and_attempt(self):
        a = [backoff_sleep_s(1.0, attempt, jitter_seed=99)
             for attempt in range(6)]
        b = [backoff_sleep_s(1.0, attempt, jitter_seed=99)
             for attempt in range(6)]
        assert a == b
        # Different attempts draw different jitter (the de-herding).
        assert len(set(a)) > 1

    def test_jitter_stays_in_half_to_three_halves_of_the_hint(self):
        for seed in range(50):
            for attempt in range(4):
                sleep = backoff_sleep_s(2.0, attempt, jitter_seed=seed,
                                        max_sleep_s=1000.0)
                assert 1.0 <= sleep <= 3.0

    def test_seeds_de_herd_a_fleet(self):
        sleeps = {backoff_sleep_s(1.0, 0, jitter_seed=seed)
                  for seed in range(32)}
        # 32 clients sharing one retry_after_s hint sleep 32 different
        # amounts — that is the whole point of the jitter.
        assert len(sleeps) == 32

    def test_cap_and_degenerate_hints(self):
        assert backoff_sleep_s(100.0, 0, jitter_seed=1,
                               max_sleep_s=5.0) == 5.0
        assert backoff_sleep_s(0.0, 0, jitter_seed=1) == 0.0
        assert backoff_sleep_s(-3.0, 0, jitter_seed=1) == 0.0


class TestDeadline:
    def test_deadline_caps_the_resubmit_loop(self, tmp_path):
        # queue_limit=1 with a 2-cell batch is rejected every time; the
        # server's retry_after_s hint would have the client sleeping,
        # but the deadline stops the loop early with the last rejection.
        cells = resolution_cells(2, seed=40)
        with ServiceHarness(cache_dir=str(tmp_path / "cc"), workers=0,
                            queue_limit=1) as harness:
            start = time.monotonic()
            with pytest.raises(Backpressure):
                submit_batch(harness.host, harness.port, cells,
                             max_attempts=50, max_sleep_s=30.0,
                             jitter_seed=7, deadline_s=0.5)
            elapsed = time.monotonic() - start
            assert elapsed < 5.0  # nowhere near 50 × hint sleeps

    def test_without_deadline_attempts_bound_the_loop(self, tmp_path):
        cells = resolution_cells(2, seed=41)
        with ServiceHarness(cache_dir=str(tmp_path / "cc"), workers=0,
                            queue_limit=1) as harness:
            with pytest.raises(Backpressure):
                submit_batch(harness.host, harness.port, cells,
                             max_attempts=2, max_sleep_s=0.01,
                             jitter_seed=7)
