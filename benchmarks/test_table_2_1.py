"""Table 2.1 — CFS configuration values on the evaluated machine."""

from conftest import banner, row

from repro.sched.params import SchedParams, scaling_factor


def test_table_2_1(run_once):
    params = run_once(SchedParams.for_cores, 16)
    banner("Table 2.1: relevant CFS configurations (16-core machine)")
    row("scaling factor ν", "4", scaling_factor(16))
    row("S_bnd (sysctl_sched_latency)", "24 ms", f"{params.s_bnd / 1e6:.0f} ms")
    row("S_min (sched_min_granularity)", "3 ms", f"{params.s_min / 1e6:.0f} ms")
    row("S_slack (wakeup max lag)", "12 ms", f"{params.s_slack / 1e6:.0f} ms")
    row("S_preempt (wakeup_granularity)", "4 ms",
        f"{params.s_preempt / 1e6:.0f} ms")
    row("preemption budget (S_slack − S_preempt)", "8 ms",
        f"{params.preemption_budget / 1e6:.0f} ms")
    assert params.s_bnd == 24_000_000
    assert params.s_min == 3_000_000
    assert params.s_slack == 12_000_000
    assert params.s_preempt == 4_000_000
