"""Branch Target Buffer with NightVision update semantics.

The paper's §5.3 channel rests on two BTB behaviours established by
NightVision (Yu et al., ISCA'23) and BunnyHop (Zhang et al., USENIX
Sec'23) on the evaluated machine:

1. Entries are indexed/tagged by the **lower 32 bits of the PC**, so an
   instruction placed exactly 4 GiB away from a victim instruction
   collides with it.
2. Both control-transfer *and* non-control-transfer instructions update
   the BTB on retirement: a control transfer (re)allocates an entry with
   its target; any other instruction that collides with an existing
   entry **invalidates** it (the frontend discovers the predicted
   "branch" is not a branch).
3. A valid entry causes the instruction prefetcher to fetch the
   predicted target's line ahead of time (this is what the Train+Probe
   gadget converts into a cache-timing signal).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

PC_INDEX_MASK = (1 << 32) - 1


@dataclass
class BtbEntry:
    """One predicted control transfer."""

    source_pc: int
    target: int
    valid: bool = True


class Btb:
    """Per-core BTB keyed by the low 32 bits of the source PC.

    ``capacity`` bounds the number of live entries; allocation beyond it
    evicts the oldest entry (FIFO), which is a coarse but sufficient
    stand-in for the real replacement policy: the attacks allocate a
    handful of entries and only care about targeted collisions.
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: Dict[int, BtbEntry] = {}
        self.invalidations = 0
        self.allocations = 0

    @staticmethod
    def index_of(pc: int) -> int:
        return pc & PC_INDEX_MASK

    # ------------------------------------------------------------------
    # Update paths (called on instruction retirement/execution)
    # ------------------------------------------------------------------
    def on_control_transfer(self, pc: int, target: int) -> None:
        """A taken control transfer at ``pc`` (re)allocates its entry."""
        idx = self.index_of(pc)
        if idx not in self._entries and len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[idx] = BtbEntry(source_pc=pc, target=target)
        self.allocations += 1

    def on_plain_instruction(self, pc: int) -> None:
        """A non-control-transfer instruction at ``pc`` invalidates any
        colliding entry (NightVision behaviour)."""
        entry = self._entries.get(self.index_of(pc))
        if entry is not None and entry.valid:
            entry.valid = False
            self.invalidations += 1

    # ------------------------------------------------------------------
    # Prediction / probing
    # ------------------------------------------------------------------
    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for a fetch at ``pc``, or None.

        Only a *valid* entry produces a prediction (and therefore a
        target-line prefetch).
        """
        entry = self._entries.get(self.index_of(pc))
        if entry is not None and entry.valid:
            return entry.target
        return None

    def entry_at(self, pc: int) -> Optional[BtbEntry]:
        """Raw entry access for tests/diagnostics."""
        return self._entries.get(self.index_of(pc))

    def snapshot(self, pcs) -> tuple:
        """Immutable view of the entries colliding with ``pcs``.

        Used by the executor's periodic fast-forward to certify that one
        loop period left every touched BTB entry unchanged (a fixed
        point): compare the snapshot before and after the measured
        period.  Each element is ``(source_pc, target, valid)`` or None.
        """
        entries = self._entries
        return tuple(
            (e.source_pc, e.target, e.valid) if e is not None else None
            for e in (entries.get(pc & PC_INDEX_MASK) for pc in pcs)
        )

    def flush(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
