"""The sweep journal: append-only WAL with torn-tail tolerant replay.

The durability contract: every record is one newline-terminated
O_APPEND write; a crash can at worst tear the final line, and
:func:`repro.obs.journal.replay` must treat that tear as a normal
crash artifact — trust everything before it, report ``torn``, never
raise.
"""

import json
import os

from repro.obs.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    journal_path,
    replay,
)


def test_missing_journal_replays_empty(tmp_path):
    recovered = replay(journal_path(str(tmp_path)))
    assert len(recovered) == 0
    assert not recovered.torn
    assert recovered.spec_digest is None


def test_records_round_trip_with_header(tmp_path):
    with SweepJournal(str(tmp_path), spec_digest="abc123") as journal:
        journal.record("k1", "d1", index=0, experiment="resolution")
        journal.record("k2", "d2", index=1, experiment="resolution")
    recovered = replay(journal_path(str(tmp_path)))
    assert recovered.spec_digest == "abc123"
    assert recovered.header["schema"] == JOURNAL_SCHEMA
    assert not recovered.torn
    assert "k1" in recovered and "k2" in recovered
    assert recovered.digest_for("k1") == "d1"
    assert recovered.digest_for("missing") is None


def test_last_write_wins_on_rejournaled_key(tmp_path):
    with SweepJournal(str(tmp_path)) as journal:
        journal.record("k1", "d1")
        journal.record("k1", "d1")  # idempotent re-append across attempts
    recovered = replay(journal_path(str(tmp_path)))
    assert len(recovered) == 1
    assert recovered.digest_for("k1") == "d1"


def test_torn_final_line_is_tolerated(tmp_path):
    with SweepJournal(str(tmp_path), spec_digest="s") as journal:
        journal.record("k1", "d1")
        journal.record("k2", "d2")
    # A crash mid-append: the final line lost its newline (and half its
    # bytes).  Everything before the tear must replay intact.
    with open(journal_path(str(tmp_path)), "ab") as fh:
        fh.write(b'{"key": "k3", "dig')
    recovered = replay(journal_path(str(tmp_path)))
    assert recovered.torn
    assert recovered.digest_for("k1") == "d1"
    assert recovered.digest_for("k2") == "d2"
    assert "k3" not in recovered


def test_garbage_interior_line_stops_replay_at_the_tear(tmp_path):
    path = journal_path(str(tmp_path))
    with SweepJournal(str(tmp_path)) as journal:
        journal.record("k1", "d1")
    with open(path, "ab") as fh:
        fh.write(b"\x00\xff garbage line\n")
        fh.write(json.dumps({"key": "k2", "digest": "d2"}).encode() + b"\n")
    recovered = replay(path)
    assert recovered.torn
    # Records *before* the tear are trusted; after it, nothing is.
    assert recovered.digest_for("k1") == "d1"
    assert "k2" not in recovered


def test_reopen_appends_without_a_second_header(tmp_path):
    with SweepJournal(str(tmp_path), spec_digest="run1") as journal:
        journal.record("k1", "d1")
    with SweepJournal(str(tmp_path), spec_digest="ignored") as journal:
        journal.record("k2", "d2")
    raw = open(journal_path(str(tmp_path)), "rb").read()
    headers = [line for line in raw.splitlines() if b'"header"' in line]
    assert len(headers) == 1
    recovered = replay(journal_path(str(tmp_path)))
    assert recovered.spec_digest == "run1"
    assert len(recovered) == 2


def test_forward_compatible_records_are_skipped_not_fatal(tmp_path):
    path = journal_path(str(tmp_path))
    with SweepJournal(str(tmp_path)) as journal:
        journal.record("k1", "d1")
    with open(path, "ab") as fh:
        fh.write(json.dumps({"type": "checkpoint", "note": "v2"}).encode()
                 + b"\n")
        fh.write(json.dumps({"key": "k2", "digest": "d2"}).encode() + b"\n")
    recovered = replay(path)
    assert not recovered.torn
    assert recovered.digest_for("k2") == "d2"


def test_flush_survives_close_and_fsync_batching(tmp_path):
    journal = SweepJournal(str(tmp_path), fsync_every=100)
    for i in range(10):
        journal.record(f"k{i}", f"d{i}")
    # Unflushed batch is still visible to replay (OS buffers flush on
    # close); fsync batching only bounds what a *power* failure loses.
    journal.close()
    recovered = replay(journal_path(str(tmp_path)))
    assert len(recovered) == 10
