"""Unit tests for §5.2 trace segmentation and two-run stitching."""

import pytest

from repro.attacks.sgx_base64 import (
    SgxRunTrace,
    _best_group_offset,
    stitch_runs,
)


def rounds_for(chars, group=8):
    """Build an idealized round stream: one validity round per char,
    one decode round between groups."""
    rounds = []
    for start in range(0, len(chars), group):
        for value in chars[start: start + group]:
            rounds.append((True, value == 0, value == 1))
        rounds.append((False, True, False))  # decode phase
    return rounds


class TestCharLines:
    def test_clean_stream_recovers_all(self):
        chars = [0, 1, 1, 0, 1, 0, 0, 1] * 3
        trace = SgxRunTrace(rounds_for(chars))
        assert trace.char_lines(group_chars=8) == chars

    def test_zero_rounds_skipped(self):
        rounds = [(True, True, False), (True, False, False),
                  (True, False, True)]
        trace = SgxRunTrace(rounds)
        assert trace.char_lines() == [0, 1]

    def test_boundary_artifact_capped(self):
        """The validity→decode straddle round adds a 9th entry to an
        8-char group; the cap drops it."""
        chars = [1] * 8
        rounds = rounds_for(chars)
        # Inject the artifact: an extra LUT hit in the last validity
        # round (the decode loop's first access previewing).
        rounds[7] = (True, True, True)
        trace = SgxRunTrace(rounds)
        assert len(trace.char_lines(group_chars=8)) == 8

    def test_drop_first_segment(self):
        chars = [0, 1] * 8
        trace = SgxRunTrace(rounds_for(chars, group=8))
        kept = trace.char_segments(group_chars=8, drop_first_segment=True)
        assert len(kept) == 1
        assert kept[0] == chars[8:]

    def test_idle_rounds_do_not_split_segments(self):
        rounds = [(True, True, False), (False, False, False),
                  (True, False, True)]
        trace = SgxRunTrace(rounds)
        assert trace.char_segments() == [[0, 1]]


class TestStitching:
    # Pseudo-random bits: groups must be distinguishable, or any offset
    # would match any other.
    TRUTH = [(i * 73 // 7) % 2 for i in range(64 * 4)]

    def _segments(self, groups):
        return [
            self.TRUTH[64 * g: 64 * (g + 1)] for g in groups
        ]

    def test_single_run_placement(self):
        stitched = stitch_runs(self._segments([0, 1]), [], len(self.TRUTH))
        assert stitched[:128] == self.TRUTH[:128]
        assert all(v is None for v in stitched[128:])

    def test_two_runs_with_overlap(self):
        run1 = self._segments([0, 1, 2])
        run2 = self._segments([2, 3])
        stitched = stitch_runs(run1, run2, len(self.TRUTH),
                               run2_group_estimate=2)
        assert stitched == self.TRUTH

    def test_overlap_corrects_bad_estimate(self):
        run1 = self._segments([0, 1, 2])
        run2 = self._segments([2, 3])
        stitched = stitch_runs(run1, run2, len(self.TRUTH),
                               run2_group_estimate=1)  # off by one
        assert stitched == self.TRUTH

    def test_estimate_used_when_no_overlap(self):
        run1 = self._segments([0, 1])
        run2 = self._segments([3])
        stitched = stitch_runs(run1, run2, len(self.TRUTH),
                               run2_group_estimate=3)
        assert stitched[64 * 3:] == self.TRUTH[64 * 3:]
        assert all(v is None for v in stitched[128: 64 * 3])

    def test_run1_wins_where_both_observed(self):
        run1 = [[1] * 64]
        run2 = [[0] * 64]
        stitched = stitch_runs(run1, run2, 64, run2_group_estimate=0)
        assert stitched == [1] * 64


class TestBestGroupOffset:
    def test_exact_match_found_near_estimate(self):
        truth = [(i * 73 // 7) % 2 for i in range(256)]
        segments = [truth[128:192]]  # exactly group 2
        offset = _best_group_offset(truth, segments, estimate=1)
        assert offset == 2

    def test_estimate_kept_without_strong_overlap(self):
        placed = [None] * 256
        segments = [[1] * 64]
        assert _best_group_offset(placed, segments, estimate=3) == 3

    def test_estimate_clamped(self):
        placed = [None] * 128
        assert _best_group_offset(placed, [[1]], estimate=99) <= 1
