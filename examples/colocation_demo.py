#!/usr/bin/env python3
"""§4.4 demo: steering the victim onto the attacker's core.

An unprivileged attacker cannot pin someone else's thread — but it can
pin its own.  Fifteen pinned dummy threads occupy fifteen of the
sixteen logical cores; when the victim is invoked, the scheduler's
idlest-CPU placement has exactly one choice left, and the attacker pins
its measurement thread alongside.  Load balancing then finds no idle
core to migrate the victim to, so it stays put for the whole attack.

Also demonstrates the stated limitation: on a fully loaded machine
there is no idle core to steer the victim to.

Run:  python examples/colocation_demo.py
"""

from repro.experiments.colocation import (
    run_colocation,
    run_fully_loaded_colocation,
)


def main() -> None:
    print("16-core machine; attacker launches 15 pinned dummies "
          "(cores 0-14), leaving core 15 idle...")
    outcome = run_colocation(n_cores=16, seed=3)
    print(f"victim landed on cpu{outcome.landed_cpu} "
          f"(target was cpu{outcome.target_cpu}) — "
          f"{'SUCCESS' if outcome.colocated else 'FAILED'}")
    print(f"victim stayed on the target core for the attack: "
          f"{outcome.victim_stayed}")
    print(f"consecutive preemptions achieved on that core: "
          f"{outcome.preemptions_on_target}")
    print(f"attacker threads used: {outcome.attacker_threads_used} "
          "(15 dummies + 1 measurement thread; none of them synchronize)")
    print()
    print("negative control: every core already busy before the attack...")
    degraded = run_fully_loaded_colocation(n_cores=16, seed=3)
    print(f"colocation premise defeated on a fully loaded machine: "
          f"{degraded} (the paper notes attackers simply wait for an "
          "idle core — e.g. Cloud Run keeps utilization below 60 %)")


if __name__ == "__main__":
    main()
