#!/usr/bin/env python3
"""§6 demo: what the defences do to the primitive.

Runs the same Controlled Preemption characterization under the
baseline configuration and each mitigation:

* NO_WAKEUP_PREEMPTION (the Linux security team's recommendation),
* a Xen-style minimum scheduling interval before wakeup preemption,
* SGX with and without AEX-Notify's guaranteed-progress handler.

Run:  python examples/mitigations_demo.py
"""

from repro.experiments.mitigations import evaluate_mitigations


def main() -> None:
    print("evaluating §6 mitigations (400 attack rounds each)...\n")
    results = evaluate_mitigations(rounds=400, seed=1)
    header = (f"{'configuration':<22} {'wakeup preemptions':>18} "
              f"{'median insts/preempt':>21} {'single-step':>12}")
    print(header)
    print("-" * len(header))
    for r in results:
        median = (f"{r.median_instructions_per_preemption:,.0f}"
                  if r.median_instructions_per_preemption ==
                  r.median_instructions_per_preemption else "n/a")
        print(f"{r.name:<22} {r.consecutive_preemptions:>18} "
              f"{median:>21} {r.single_step_fraction:>11.0%}")
    print()
    print("reading the table:")
    print(" - the baseline single-steps the victim hundreds of times;")
    print(" - NO_WAKEUP_PREEMPTION removes Eq 2.2: zero wakeup "
          "preemptions, the victim runs multi-millisecond slices;")
    print(" - a minimum scheduling interval throttles the preemption "
          "rate to one per interval;")
    print(" - AEX-Notify keeps the attack alive but destroys "
          "single-stepping — the enclave always makes tens of "
          "instructions of progress per resume (§6 notes 50–100 "
          "instructions is still enough for some attacks, e.g. §5.1).")


if __name__ == "__main__":
    main()
