"""Table 2.1: scheduler tunables derived from the core count."""

import pytest

from repro.sched.params import SchedParams, scaling_factor

MS = 1_000_000


class TestScalingFactor:
    @pytest.mark.parametrize(
        "cores,nu",
        [(1, 1), (2, 2), (4, 3), (8, 4), (16, 4), (64, 4)],
    )
    def test_nu(self, cores, nu):
        assert scaling_factor(cores) == nu

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            scaling_factor(0)


class TestTable2_1:
    """The paper's evaluated 16-core machine."""

    def test_sixteen_core_values(self):
        p = SchedParams.for_cores(16)
        assert p.s_bnd == 24 * MS
        assert p.s_min == 3 * MS
        assert p.s_slack == 12 * MS
        assert p.s_preempt == 4 * MS

    def test_preemption_budget_is_8ms(self):
        assert SchedParams.for_cores(16).preemption_budget == 8 * MS

    def test_gentle_fair_sleepers_halves_slack(self):
        gentle = SchedParams.for_cores(16, gentle_fair_sleepers=True)
        harsh = SchedParams.for_cores(16, gentle_fair_sleepers=False)
        assert gentle.s_slack == harsh.s_bnd // 2
        assert harsh.s_slack == harsh.s_bnd

    def test_slack_exceeds_preempt_threshold(self):
        """S_slack > S_preempt is the entire basis of the attack (§4.1);
        it must hold for every core count."""
        for cores in (1, 2, 4, 8, 16, 32, 128):
            p = SchedParams.for_cores(cores)
            assert p.s_slack > p.s_preempt

    def test_single_core_values(self):
        p = SchedParams.for_cores(1)
        assert p.s_bnd == 6 * MS
        assert p.s_preempt == 1 * MS

    def test_base_slice_scales(self):
        assert SchedParams.for_cores(16).base_slice == 3 * MS
